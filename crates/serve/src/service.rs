//! The [`FastService`]: tenants, admission, sessions, executors, reporting.
//!
//! # Life of a query
//!
//! 1. [`FastService::submit_for`] enqueues the submission on its tenant's
//!    lane of the weighted round-robin session table and returns a
//!    [`SessionHandle`] **immediately — submission never blocks**. Queued
//!    sessions are table entries, not blocked OS threads;
//!    [`FastService::try_submit`] adds typed backpressure
//!    ([`ServeError::Saturated`]) at the admission bound instead of
//!    queueing without limit.
//! 2. A small fixed pool of **executor threads** polls ready work in
//!    priority order: completed partitions from the device pool's
//!    completion queue first, then its own task deque (LIFO, cache-warm),
//!    then tasks stolen from a peer's deque (FIFO, oldest), and finally —
//!    when an execution permit (`max_in_flight`) is free — the next
//!    submission in deficit-round-robin order across tenants. A picked-up
//!    session becomes a slab entry driven through an explicit state
//!    machine (`Admitted → Planning → Building → Dispatched → Draining →
//!    Done`/`Shed`), so ten thousand in-flight sessions cost table
//!    entries, not stacks. The per-session deadline is re-checked at
//!    every transition.
//! 3. Pickup derives the BFS tree / matching order / kernel plan
//!    **once**, then resolves the two cache tiers — both keyed by the
//!    same [`cst::PlanKey`] × the *tenant's* graph epoch — under a
//!    single-flight gate: a **tier-2** hit replays the refined shard
//!    CSTs and their partition decomposition through
//!    [`FastConfig::prepared`] (zero planning, zero build, zero
//!    partitioning); a plan-only hit rides the stored [`cst::ShardPlan`]
//!    into [`fast::prepare_partitions`] through [`FastConfig::shard_plan`]
//!    (probe skipped, build seeded); a full miss computes and publishes
//!    the plan, builds, and inserts the captured artifact into tier 2. A
//!    session whose key is already being computed **parks** (its lane's
//!    deficit round is told via `WrrQueue::park`; no executor thread
//!    blocks) and is re-enqueued by the owner's flight release.
//! 4. The build stages the partition jobs on the session; executor tasks
//!    then execute them one at a time — each is booked onto the pool
//!    device with the shortest expected completion ([`DevicePool`] —
//!    emulated FPGA cards and CPU fallback shares priced under their own
//!    cost models), its result is streamed to the session handle, and
//!    the session lands on the pool's **completion queue** to be resumed
//!    by whichever executor drains it next.
//! 5. The final [`QueryReport`] closes the session, service and tenant
//!    metrics are folded in, and the execution permit is released.
//!
//! Serving executes every partition on the device pool (the multi-FPGA
//! regime of Section VII-E, generalised to heterogeneous backends); the
//! single-run CPU-share scheduler (FAST-SHARE's δ) is not booked here —
//! `run_fast` remains the one-shot path.

use crate::cache::{CacheBudget, CacheStats, CstCache, PlanCache};
use crate::devices::{DeviceKind, DevicePool, DeviceStats};
use crate::metrics::{ServeReport, TenantSummary};
use crate::tenant::{TenantConfig, TenantId, WrrQueue};
use cst::PlanKey;
use fast::{
    prepare_partitions, BackendClass, BackendOutput, CollectMode, CpuBackend, ExecutionBackend,
    FastConfig, KernelPlan, PartitionJob, QueryCtx, ShardPlanner,
};
use graph_core::{path_based_order, select_root, BfsTree, Graph, MatchingOrder, QueryGraph, VertexId};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{
    mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poison-tolerant [`Mutex`] acquisition. A panicking session is already
/// contained — the worker's `catch_unwind` absorbs the unwind and drop
/// guards release its slot and flight — and every state these locks
/// protect (counters, queues, cache tables, the device pool) is consistent
/// whenever a guard is held across a possible panic site. Propagating the
/// poison instead would cascade [`ServeError::Disconnected`] to every
/// other tenant for a failure that was one session's own.
pub(crate) trait MutexExt<T> {
    fn plock(&self) -> MutexGuard<'_, T>;
}

impl<T> MutexExt<T> for Mutex<T> {
    fn plock(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-tolerant [`RwLock`] acquisition (see [`MutexExt`]).
pub(crate) trait RwLockExt<T> {
    fn pread(&self) -> RwLockReadGuard<'_, T>;
    fn pwrite(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    fn pread(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn pwrite(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-tolerant [`Condvar::wait`].
fn pwait<'a, T>(cond: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cond.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of a [`FastService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-session FAST configuration (device spec, variant, CST options,
    /// planner). [`FastConfig::shard_plan`] is overwritten per session by
    /// the cache outcome. When the fleet contains FPGA devices with less
    /// BRAM than `fast.spec`, the session spec's BRAM is clamped down to
    /// the fleet minimum so one shared partition stream fits every card.
    pub fast: FastConfig,
    /// Emulated FPGA cards at `fast.spec` (the homogeneous base fleet).
    pub devices: usize,
    /// Additional heterogeneous devices: FPGA cards with their own specs
    /// and/or CPU fallback shares. The pool is `devices` base cards plus
    /// one device per entry; an entirely empty fleet is
    /// [`ServeError::NoDevices`].
    pub extra_devices: Vec<DeviceKind>,
    /// Executor threads polling ready sessions. Each drives many
    /// sessions through their state machines — in-flight depth is bounded
    /// by [`max_in_flight`](Self::max_in_flight), not by this.
    pub workers: usize,
    /// Default plan-cache capacity of each tenant's cache partition
    /// (plans); 0 disables caching ("cold" serving). Override per tenant
    /// via [`TenantConfig::cache_capacity`].
    pub cache_capacity: usize,
    /// When set, tenant plan caches are budgeted in **bytes**
    /// (`ShardPlan::approx_bytes`) instead of entries and
    /// [`cache_capacity`](Self::cache_capacity) is ignored. A per-tenant
    /// [`TenantConfig::cache_capacity`] override still counts entries.
    pub plan_cache_bytes: Option<usize>,
    /// Byte budget of each tenant's **tier-2** shard-CST cache partition
    /// ([`crate::CstCache`]): the refined shard CSTs and their partition
    /// decompositions, evicted LRU by `Cst::payload_bytes`. A hit makes a
    /// warm serve pure dispatch + kernel (zero build work). 0 disables
    /// tier 2. Override per tenant via [`TenantConfig::cst_cache_bytes`].
    pub cst_cache_bytes: usize,
    /// Bounded in-flight depth across all tenants. Execution permits:
    /// executors pick up queued submissions only while fewer than this
    /// many sessions hold a permit, and [`FastService::try_submit`]
    /// returns [`ServeError::Saturated`] once this many sessions are
    /// admitted but not yet finished. [`FastService::submit`] itself
    /// never blocks — queued sessions are table entries.
    pub max_in_flight: usize,
    /// Default per-session deadline, measured from submission: a session
    /// still queued (or still executing) past it is shed with
    /// [`ServeError::DeadlineExceeded`] instead of stalling its tenant's
    /// DRR lane. `None` disables deadlines. Override per tenant via
    /// [`TenantConfig::deadline`].
    pub deadline: Option<Duration>,
    /// Recovery policy: retry/failover bounds, output cross-checking, and
    /// the degraded-mode CPU fallback.
    pub fault: FaultPolicy,
}

/// Recovery policy of the serving layer: what happens when a device
/// returns [`fast::BackendError`], lies ([`FaultPolicy::cross_check`]), or
/// when the whole fleet is quarantined/evicted
/// ([`FaultPolicy::cpu_fallback`]).
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    /// Execution attempts per partition before its session fails. Each
    /// failed attempt releases the booking, advances the device's health
    /// state machine, and reroutes to the shortest-expected-completion
    /// healthy device *other than* the one that just failed.
    pub max_attempts: usize,
    /// Backoff slept before retry `k`: `backoff << (k-1)`, capped at 64×.
    /// Kept tiny by default — the devices are emulated, so this models the
    /// driver's re-queue cost rather than real recovery time.
    pub backoff: Duration,
    /// Re-execute every partition on a *second* device and cross-check the
    /// results (embedding count + collected embeddings); disagreeing
    /// devices are marked suspect (counting toward quarantine) until two
    /// executions agree. Catches silent corruption at ~2× device work.
    pub cross_check: bool,
    /// When every pool device is quarantined or evicted, execute on an
    /// emergency host CPU share (degraded mode) instead of shedding the
    /// session with [`ServeError::Degraded`].
    pub cpu_fallback: bool,
    /// Threads of the emergency CPU share.
    pub fallback_threads: usize,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_attempts: 4,
            backoff: Duration::from_micros(50),
            cross_check: false,
            cpu_fallback: true,
            fallback_threads: 4,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        // Serving wants the planned pipeline: the auto planner is what the
        // plan cache amortises, and per-query shard counts are chosen once
        // then replayed from cache.
        let fast = FastConfig {
            shard_planner: ShardPlanner::Auto,
            ..FastConfig::default()
        };
        ServeConfig {
            fast,
            devices: 2,
            extra_devices: Vec::new(),
            workers: 2,
            cache_capacity: 64,
            plan_cache_bytes: None,
            // Tier 2 defaults on with a deliberately modest budget: warm
            // repeats skip the whole build, and the byte-budgeted LRU
            // bounds residency regardless of query mix.
            cst_cache_bytes: 64 << 20,
            max_in_flight: 64,
            deadline: None,
            fault: FaultPolicy::default(),
        }
    }
}

/// One partition's result, streamed to the session as its backend drains.
#[derive(Debug, Clone)]
pub struct PartitionUpdate {
    /// Position in the session's deterministic partition sequence.
    pub index: usize,
    /// Pool device the partition ran on.
    pub device: usize,
    /// Class of the executing backend (FPGA card or CPU share).
    pub backend: BackendClass,
    /// Embeddings found in this partition (backend-independent).
    pub embeddings: u64,
    /// Modelled kernel cycles the partition cost (0 on CPU backends).
    pub kernel_cycles: u64,
    /// Modelled execution seconds under the backend's own cost model.
    pub modeled_sec: f64,
    /// Collected embeddings, when [`FastConfig::collect`] asks for them.
    pub collected: Vec<Vec<VertexId>>,
}

/// Final per-session report.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Session id (submission order across all tenants).
    pub id: u64,
    /// Tenant the session ran for.
    pub tenant: TenantId,
    /// Completion order across all tenants (0-based): the witness the
    /// fairness tests rank — under saturation, windows of this sequence
    /// split by tenant quota.
    pub completion_seq: u64,
    /// Total embeddings across partitions.
    pub embeddings: u64,
    /// Partitions executed.
    pub partitions: usize,
    /// Whether *either* cache tier hit: the shard plan came from the
    /// tenant's plan cache, or the whole prepared CST set came from its
    /// tier-2 partition.
    pub cache_hit: bool,
    /// Whether the session replayed a tier-2 shard-CST artifact — the
    /// fully warm path: no planning, no build, no partitioning; the
    /// session was pure dispatch + kernel.
    pub cst_cache_hit: bool,
    /// Shard-planning wall time (~0 on a hit).
    pub plan_time: Duration,
    /// CST build wall: refinement + materialisation + partitioning,
    /// excluding inline backend execution. **Exactly zero** on a tier-2
    /// hit — the claim the `cstcache` figure and the release-mode warm
    /// test assert.
    pub build_time: Duration,
    /// Phase-1 top-down scan work of the session's build — 0 when every
    /// shard was seeded from the plan's probe *or* replayed from tier 2.
    pub topdown_entries: usize,
    /// Shards the plan decomposed the root set into.
    pub pipeline_shards: usize,
    /// Shards built from the cached/fresh plan's probe — a warm-cache
    /// session seeds every shard and skips the global top-down scan. 0 on
    /// a tier-2 hit (nothing is built at all).
    pub seeded_shards: usize,
    /// Wall time from worker pickup to completion (build + partition +
    /// inline emulated backends).
    pub service_time: Duration,
    /// Wall time from submission to worker pickup.
    pub queue_wait: Duration,
    /// Modelled device queueing delay: the worst queue this session's
    /// partitions joined behind (outstanding booked work on the assigned
    /// device at its modelled rate, in seconds). The host wall alone hides
    /// this contention — the emulated backends run inline — so it is
    /// folded into [`latency`](Self::latency).
    pub device_queue_sec: f64,
    /// Wall time from submission to completion **plus** the modelled
    /// device queueing delay ([`device_queue_sec`](Self::device_queue_sec))
    /// — the device-faithful latency the service percentiles aggregate.
    pub latency: Duration,
    /// Modelled kernel cycles across the session's FPGA-executed
    /// partitions (CPU-executed partitions have no cycle notion).
    pub kernel_cycles: u64,
    /// Modelled execution seconds across all partitions, each under its
    /// executing backend's own cost model.
    pub device_sec: f64,
    /// Failed execution attempts this session retried (each one released
    /// its booking and rerouted).
    pub retries: u64,
    /// Retries that landed on a *different* device than the one that
    /// failed (rerouting, not same-device re-execution).
    pub failovers: u64,
    /// Corrupted outputs the cross-check caught and outvoted.
    pub corruption_catches: u64,
    /// Wall seconds this session spent executing on the emergency CPU
    /// fallback because the whole pool was quarantined or evicted.
    pub degraded_sec: f64,
}

/// Events a [`SessionHandle`] receives, in order: zero or more
/// [`SessionEvent::Partition`]s, then exactly one `Done` or `Failed`.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// One partition finished on a device.
    Partition(PartitionUpdate),
    /// The session completed; final report.
    Done(QueryReport),
    /// The session failed with a typed error —
    /// [`ServeError::Failed`] from the planning/validation layer or a
    /// partition that exhausted its retry budget,
    /// [`ServeError::DeadlineExceeded`] for a session shed past its
    /// deadline, [`ServeError::Degraded`] for a session shed because the
    /// whole fleet was down (CPU fallback disabled).
    Failed(ServeError),
}

/// Typed service errors: session outcomes ([`Failed`](Self::Failed),
/// [`Disconnected`](Self::Disconnected)) and construction/registration
/// failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service reported a failure for this session.
    Failed(String),
    /// The service shut down before the session finished.
    Disconnected,
    /// The configured fleet has no devices at all.
    NoDevices,
    /// A tenant was registered with quota 0 (it could never be scheduled).
    ZeroQuota,
    /// The addressed tenant was never registered.
    UnknownTenant(TenantId),
    /// A tenant snapshot failed to load.
    Snapshot(String),
    /// The session's deadline ([`ServeConfig::deadline`] /
    /// [`TenantConfig::deadline`]) passed before it finished; queued or
    /// remaining work was shed.
    DeadlineExceeded,
    /// Every pool device is quarantined or evicted and the CPU fallback is
    /// disabled: the session was shed rather than queued forever.
    Degraded,
    /// The admission bound (`max_in_flight`) is reached:
    /// [`FastService::try_submit`] hands the caller typed backpressure
    /// instead of queueing without limit.
    Saturated,
    /// Shutdown has begun: new submissions are rejected, and queued
    /// sessions that never started are shed with this error.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Failed(msg) => write!(f, "session failed: {msg}"),
            ServeError::Disconnected => write!(f, "service shut down mid-session"),
            ServeError::NoDevices => write!(f, "service has no devices (empty fleet)"),
            ServeError::ZeroQuota => write!(f, "tenant quota must be >= 1"),
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::Snapshot(msg) => write!(f, "snapshot load failed: {msg}"),
            ServeError::DeadlineExceeded => {
                write!(f, "session shed: deadline exceeded before completion")
            }
            ServeError::Degraded => write!(
                f,
                "service degraded: every device is quarantined or evicted"
            ),
            ServeError::Saturated => {
                write!(f, "service saturated: admission bound reached")
            }
            ServeError::ShuttingDown => {
                write!(f, "service shutting down: submission rejected")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Caller-side handle of one submitted query.
#[derive(Debug)]
pub struct SessionHandle {
    id: u64,
    tenant: TenantId,
    rx: mpsc::Receiver<SessionEvent>,
}

impl SessionHandle {
    /// Session id (submission order, 0-based).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Tenant the session was submitted for.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Blocks for the next event; `None` once the session is over (after
    /// `Done`/`Failed` was delivered) or the service shut down.
    pub fn next_event(&self) -> Option<SessionEvent> {
        self.rx.recv().ok()
    }

    /// Drains the session to completion, discarding partition updates.
    pub fn wait(self) -> Result<QueryReport, ServeError> {
        loop {
            match self.rx.recv() {
                Ok(SessionEvent::Done(report)) => return Ok(report),
                Ok(SessionEvent::Failed(err)) => return Err(err),
                Ok(SessionEvent::Partition(_)) => continue,
                Err(_) => return Err(ServeError::Disconnected),
            }
        }
    }
}

/// Everything the service keys by tenant: the loaded graph, its epoch,
/// the fair-share quota, private cache partitions (both tiers), and
/// metrics.
struct TenantState {
    id: TenantId,
    graph: Arc<Graph>,
    quota: u32,
    /// Resolved per-session deadline: the tenant's own override or the
    /// service default.
    deadline: Option<Duration>,
    /// Graph epoch folded into this tenant's cache keys (both tiers);
    /// bump on any graph change so stale entries can never hit.
    epoch: AtomicU64,
    /// Tier 1: shard plans.
    cache: Mutex<PlanCache>,
    /// Tier 2: refined shard CSTs + partition decompositions,
    /// byte-budgeted.
    cst_cache: Mutex<CstCache>,
    metrics: Mutex<MetricsState>,
}

struct Submission {
    id: u64,
    tenant: Arc<TenantState>,
    query: QueryGraph,
    submitted: Instant,
    /// Submit time on the obs trace clock, so the session and queue-wait
    /// spans start at the true submit instant (0 when tracing is off).
    submitted_ns: u64,
    tx: mpsc::Sender<SessionEvent>,
}

#[derive(Default)]
struct Gate {
    /// Sessions holding an execution permit (picked up, not finished).
    in_flight: usize,
    /// Sessions admitted and not yet finished, including still-queued
    /// ones — the bound [`FastService::try_submit`] enforces.
    admitted: usize,
    /// High-water mark of `in_flight` (permit holders only).
    max_seen: usize,
}

/// Sample distributions are streaming log-bucketed [`obs::Histogram`]s:
/// constant memory on a service that runs forever (the predecessor was a
/// strided sample reservoir that still held 2¹⁶ floats per set), exact
/// mergeable bucket counts (so [`FastService::report_window`] deltas
/// reconcile bit-exactly against the lifetime report on every integer
/// counter), and quantiles read without any per-report sort.
#[derive(Default, Clone)]
struct MetricsState {
    submitted: u64,
    completed: u64,
    failed: u64,
    total_embeddings: u64,
    retries: u64,
    failovers: u64,
    corruption_catches: u64,
    deadline_misses: u64,
    degraded_sec: f64,
    latencies: obs::Histogram,
    queue_waits: obs::Histogram,
    device_queues: obs::Histogram,
    plan_hits: obs::Histogram,
    plan_misses: obs::Histogram,
    build_hits: obs::Histogram,
    build_misses: obs::Histogram,
    first_submit: Option<Instant>,
    last_done: Option<Instant>,
}

impl MetricsState {
    /// Counters accumulated since `base` was captured — the rolling-window
    /// delta. Integer counters and histogram bucket counts subtract
    /// exactly; the f64 sums (`degraded_sec`, histogram sums) subtract in
    /// floating point and are clamped non-negative.
    fn delta(&self, base: &MetricsState) -> MetricsState {
        MetricsState {
            submitted: self.submitted.saturating_sub(base.submitted),
            completed: self.completed.saturating_sub(base.completed),
            failed: self.failed.saturating_sub(base.failed),
            total_embeddings: self.total_embeddings.saturating_sub(base.total_embeddings),
            retries: self.retries.saturating_sub(base.retries),
            failovers: self.failovers.saturating_sub(base.failovers),
            corruption_catches: self
                .corruption_catches
                .saturating_sub(base.corruption_catches),
            deadline_misses: self.deadline_misses.saturating_sub(base.deadline_misses),
            degraded_sec: (self.degraded_sec - base.degraded_sec).max(0.0),
            latencies: self.latencies.delta(&base.latencies),
            queue_waits: self.queue_waits.delta(&base.queue_waits),
            device_queues: self.device_queues.delta(&base.device_queues),
            plan_hits: self.plan_hits.delta(&base.plan_hits),
            plan_misses: self.plan_misses.delta(&base.plan_misses),
            build_hits: self.build_hits.delta(&base.build_hits),
            build_misses: self.build_misses.delta(&base.build_misses),
            first_submit: self.first_submit,
            last_done: self.last_done,
        }
    }
}

/// Baseline captured at the previous [`FastService::report_window`] call:
/// the next window report is the current cumulative state minus this.
struct WindowState {
    /// Sequence number of the *next* window.
    seq: u64,
    /// When the baseline was captured (service start for window 0).
    taken_at: Instant,
    metrics: MetricsState,
    cache: CacheStats,
    cst_cache: CacheStats,
    devices: Vec<DeviceStats>,
}

/// Point-in-time view of the device pool, taken under its lock and
/// aggregated lock-free.
struct PoolView {
    stats: Vec<DeviceStats>,
    makespan_sec: f64,
    busy_sec: f64,
    imbalance: f64,
}

impl PoolView {
    /// Derives the fleet aggregates from an explicit stats vector — used
    /// on window deltas, where makespan/busy/imbalance should describe the
    /// window's own activity rather than the lifetime totals.
    fn from_stats(stats: Vec<DeviceStats>) -> PoolView {
        let makespan_sec = stats.iter().map(|d| d.busy_sec).fold(0.0, f64::max);
        let busy_sec = stats.iter().map(|d| d.busy_sec).sum();
        let max = stats.iter().map(|d| d.total_workload).fold(0.0, f64::max);
        let mean = if stats.is_empty() {
            0.0
        } else {
            stats.iter().map(|d| d.total_workload).sum::<f64>() / stats.len() as f64
        };
        let imbalance = if mean == 0.0 { 1.0 } else { max / mean };
        PoolView {
            stats,
            makespan_sec,
            busy_sec,
            imbalance,
        }
    }
}

/// Registry handles for the hot-path serving counters, resolved once at
/// service construction (the registry lock is never taken per session).
/// The counters mirror the `MetricsState` fields one-for-one — the
/// `prop_obs` suite reconciles the two exactly.
struct ObsHooks {
    submitted: Arc<obs::Counter>,
    completed: Arc<obs::Counter>,
    failed: Arc<obs::Counter>,
    deadline_misses: Arc<obs::Counter>,
    retries: Arc<obs::Counter>,
    failovers: Arc<obs::Counter>,
    corruption_catches: Arc<obs::Counter>,
    in_flight: Arc<obs::Gauge>,
}

impl ObsHooks {
    fn new() -> Self {
        // `obs_` prefix: these are the *live* registry counters; the
        // report-derived exposition renders the same quantities under
        // `serve_*`, and one exposition must not repeat a metric name.
        ObsHooks {
            submitted: obs::counter("obs_sessions_submitted_total", "Sessions admitted"),
            completed: obs::counter("obs_sessions_completed_total", "Sessions completed"),
            failed: obs::counter("obs_sessions_failed_total", "Sessions failed"),
            deadline_misses: obs::counter(
                "obs_deadline_misses_total",
                "Sessions shed past their deadline",
            ),
            retries: obs::counter("obs_retries_total", "Failed attempts retried"),
            failovers: obs::counter(
                "obs_failovers_total",
                "Retries rerouted to a different device",
            ),
            corruption_catches: obs::counter(
                "obs_corruption_catches_total",
                "Corrupted outputs outvoted by the cross-check",
            ),
            in_flight: obs::gauge("obs_in_flight", "Currently admitted sessions"),
        }
    }
}

/// A unit of session work on an executor deque. Tasks are one `u64`
/// deep — the state lives in the session slab.
#[derive(Clone, Copy)]
enum Task {
    /// First entry after pickup: record the queue wait, derive the plan,
    /// resolve the cache tiers, build, stage partitions.
    Start(u64),
    /// Re-entry after parking on another session's plan flight.
    Resume(u64),
    /// Execute the session's next staged partition.
    Exec(u64),
}

impl Task {
    fn sid(&self) -> u64 {
        match self {
            Task::Start(id) | Task::Resume(id) | Task::Exec(id) => *id,
        }
    }
}

/// Where a session is in its lifecycle. Executor tasks drive the
/// transitions; the per-session deadline is re-checked at every one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Popped from the DRR table, permit held, not yet planned.
    Admitted,
    /// Deriving tree/order/kernel plan and resolving the cache tiers.
    Planning,
    /// Parked on another session's plan flight (single-flight waiter).
    PlanWait,
    /// Building shard CSTs / partitioning.
    Building,
    /// Partitions staged; executor tasks drain them one at a time.
    Dispatched,
    /// Last partition popped; awaiting its completion.
    Draining,
    /// Retired with a final event sent.
    Done,
    /// Retired past its deadline.
    Shed,
}

/// The session's derived execution plan, shared with partition tasks
/// through an `Arc` so execution never holds the session lock.
struct SessionPlan {
    tree: BfsTree,
    order: MatchingOrder,
    kernel_plan: KernelPlan,
    collect: CollectMode,
}

/// Accumulated results and timing splits, folded partition by partition
/// and snapshotted once at retirement to assemble the [`QueryReport`].
#[derive(Clone, Default)]
struct SessionStats {
    embeddings: u64,
    partitions: usize,
    kernel_cycles: u64,
    device_sec: f64,
    acc: FaultAcc,
    picked: Option<Instant>,
    queue_wait: Duration,
    build_start_ns: u64,
    plan_time: Duration,
    build_time: Duration,
    topdown_entries: usize,
    pipeline_shards: usize,
    seeded_shards: usize,
    plan_hit: bool,
    cst_cache_hit: bool,
}

/// Mutable per-session state, guarded by the slot's own lock. This is
/// the **innermost** lock in the service: it is never held while taking
/// any other.
struct SessionMut {
    stage: Stage,
    /// Derived once at pickup.
    plan: Option<Arc<SessionPlan>>,
    /// Partitions awaiting execution, in deterministic prepare order.
    jobs: VecDeque<PartitionJob>,
    /// First fatal error, latched: remaining partitions are skipped.
    session_err: Option<ServeError>,
    /// Flipped exactly once, before any retirement side effect — the
    /// guard that makes permit release and final-event delivery
    /// exactly-once under races (a completion vs. a panic handler).
    finished: bool,
    stats: SessionStats,
}

/// One admitted session in the slab: the immutable submission plus the
/// lock-guarded mutable state the executors advance.
struct SessionSlot {
    id: u64,
    tenant: Arc<TenantState>,
    query: QueryGraph,
    submitted: Instant,
    submitted_ns: u64,
    tx: mpsc::Sender<SessionEvent>,
    mu: Mutex<SessionMut>,
}

impl SessionSlot {
    fn new(sub: Submission) -> Self {
        SessionSlot {
            id: sub.id,
            tenant: sub.tenant,
            query: sub.query,
            submitted: sub.submitted,
            submitted_ns: sub.submitted_ns,
            tx: sub.tx,
            mu: Mutex::new(SessionMut {
                stage: Stage::Admitted,
                plan: None,
                jobs: VecDeque::new(),
                session_err: None,
                finished: false,
                stats: SessionStats::default(),
            }),
        }
    }
}

struct Inner {
    config: ServeConfig,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    next_tenant: AtomicU32,
    /// Registered tenants, ordered by id for deterministic report slices.
    tenants: RwLock<BTreeMap<TenantId, Arc<TenantState>>>,
    /// The compatibility tenant `submit` addresses, outside the registry
    /// lock (the single-tenant hot path).
    default_tenant: Arc<TenantState>,
    /// Keys being computed right now (single-flight, scoped per tenant),
    /// each mapped to the sessions **parked** on it: a concurrent
    /// identical cold query parks as a slab entry — no executor thread
    /// blocks — and the owner's flight release re-enqueues it. With
    /// tier 2 enabled the owner holds its claim through the whole build
    /// (waiters wake into a tier-2 hit — shard CSTs are built exactly
    /// once); with tier 2 disabled the claim covers only planning.
    pending_plans: Mutex<HashMap<(TenantId, PlanKey), Vec<u64>>>,
    devices: Mutex<DevicePool>,
    /// The emergency CPU share of degraded mode: partitions run here when
    /// every pool device is quarantined or evicted (and
    /// [`FaultPolicy::cpu_fallback`] allows it). `PartitionUpdate::device`
    /// reports it as the virtual index `pool.len()`.
    fallback: Option<Arc<CpuBackend>>,
    /// The queued session table: one weighted lane per tenant.
    queue: Mutex<WrrQueue<Submission>>,
    /// The session slab: every picked-up-but-unfinished session. Removal
    /// on retirement drops the event sender, so an abandoned handle sees
    /// [`ServeError::Disconnected`] rather than hanging.
    sessions: Mutex<HashMap<u64, Arc<SessionSlot>>>,
    /// Per-executor task deques: the owner pops newest-first (cache-warm
    /// LIFO), thieves steal oldest-first (FIFO). Tasks route to
    /// `deques[sid % workers]`, so one session's tasks mostly stay on
    /// one executor.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// One wake sequence shared by every producer (submissions, task
    /// pushes, partition completions, shutdown): producers bump and
    /// notify; an idle executor snapshots it *before* scanning and
    /// sleeps only if it is unchanged — the missed-wakeup guard.
    wake: Mutex<u64>,
    wake_cond: Condvar,
    shutting_down: AtomicBool,
    gate: Mutex<Gate>,
    /// Service-wide metrics (per-tenant slices live in `TenantState`).
    metrics: Mutex<MetricsState>,
    /// Baseline for the next [`FastService::report_window`] delta.
    window: Mutex<WindowState>,
    /// Cached obs registry counter handles for the serving hot path.
    hooks: ObsHooks,
}

impl Inner {
    fn tenant(&self, id: TenantId) -> Result<Arc<TenantState>, ServeError> {
        if id == self.default_tenant.id {
            return Ok(Arc::clone(&self.default_tenant));
        }
        self.tenants
            .pread()
            .get(&id)
            .cloned()
            .ok_or(ServeError::UnknownTenant(id))
    }
}

/// A running multi-tenant query-serving service over a pool of execution
/// backends.
pub struct FastService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for FastService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastService")
            .field("workers", &self.workers.len())
            .field("max_in_flight", &self.inner.config.max_in_flight)
            .finish_non_exhaustive()
    }
}

impl FastService {
    /// Loads `graph` as the default tenant and spawns the worker pool;
    /// panics on an invalid fleet (use [`FastService::try_new`] for the
    /// typed error). Accepts a plain [`Graph`] or a shared [`Arc<Graph>`].
    pub fn new(graph: impl Into<Arc<Graph>>, config: ServeConfig) -> Self {
        Self::try_new(graph, config).expect("service construction")
    }

    /// Fallible construction: an empty device fleet is
    /// [`ServeError::NoDevices`] instead of a panic.
    pub fn try_new(
        graph: impl Into<Arc<Graph>>,
        mut config: ServeConfig,
    ) -> Result<Self, ServeError> {
        assert!(config.workers >= 1, "need at least one executor");
        assert!(config.max_in_flight >= 1, "need in-flight depth >= 1");
        let pool = DevicePool::build(&config.fast, config.devices, &config.extra_devices)?;
        // One partition stream feeds every card: partitions must fit the
        // smallest FPGA BRAM in the fleet.
        if let Some(min_bram) = pool.min_fpga_bram() {
            config.fast.spec.bram_bytes = config.fast.spec.bram_bytes.min(min_bram);
        }
        let default_tenant = Arc::new(TenantState {
            id: TenantId::DEFAULT,
            graph: graph.into(),
            quota: 1,
            deadline: config.deadline,
            epoch: AtomicU64::new(TenantConfig::default().epoch),
            cache: Mutex::new(plan_cache_for(&config, None)),
            cst_cache: Mutex::new(CstCache::new(config.cst_cache_bytes)),
            metrics: Mutex::new(MetricsState::default()),
        });
        let mut queue = WrrQueue::new();
        queue.add_lane(TenantId::DEFAULT, default_tenant.quota);
        let mut tenants = BTreeMap::new();
        tenants.insert(TenantId::DEFAULT, Arc::clone(&default_tenant));
        let inner = Arc::new(Inner {
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            next_tenant: AtomicU32::new(1),
            tenants: RwLock::new(tenants),
            default_tenant,
            pending_plans: Mutex::new(HashMap::new()),
            devices: Mutex::new(pool),
            fallback: config
                .fault
                .cpu_fallback
                .then(|| Arc::new(CpuBackend::new(config.fault.fallback_threads))),
            queue: Mutex::new(queue),
            sessions: Mutex::new(HashMap::new()),
            deques: (0..config.workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            wake: Mutex::new(0),
            wake_cond: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            gate: Mutex::new(Gate::default()),
            metrics: Mutex::new(MetricsState::default()),
            window: Mutex::new(WindowState {
                seq: 0,
                taken_at: Instant::now(),
                metrics: MetricsState::default(),
                cache: CacheStats::default(),
                cst_cache: CacheStats::default(),
                devices: Vec::new(),
            }),
            hooks: ObsHooks::new(),
            config,
        });
        let workers = (0..inner.config.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || executor_loop(&inner, w))
            })
            .collect();
        Ok(FastService { inner, workers })
    }

    /// Registers a tenant: its own graph, epoch, fair-share quota, and
    /// plan-cache partition. Zero quotas are rejected
    /// ([`ServeError::ZeroQuota`]) — such a tenant could never be
    /// scheduled.
    pub fn add_tenant(
        &self,
        graph: impl Into<Arc<Graph>>,
        config: TenantConfig,
    ) -> Result<TenantId, ServeError> {
        if config.quota == 0 {
            return Err(ServeError::ZeroQuota);
        }
        let id = TenantId::new(self.inner.next_tenant.fetch_add(1, Ordering::Relaxed));
        let cst_budget = config
            .cst_cache_bytes
            .unwrap_or(self.inner.config.cst_cache_bytes);
        let state = Arc::new(TenantState {
            id,
            graph: graph.into(),
            quota: config.quota,
            deadline: config.deadline.or(self.inner.config.deadline),
            epoch: AtomicU64::new(config.epoch),
            cache: Mutex::new(plan_cache_for(&self.inner.config, config.cache_capacity)),
            cst_cache: Mutex::new(CstCache::new(cst_budget)),
            metrics: Mutex::new(MetricsState::default()),
        });
        // Lane before registry: a submission can only name the tenant
        // after `add_tenant` returns, and by then both exist.
        self.inner
            .queue
            .plock()
            .add_lane(id, config.quota);
        self.inner
            .tenants
            .pwrite()
            .insert(id, state);
        Ok(id)
    }

    /// Registers a tenant from a binary CSR snapshot
    /// (`graph_core::snapshot`) — the restart path that skips graph
    /// rebuild entirely. The snapshot is memory-mapped and verified
    /// eagerly ([`graph_core::load_snapshot_mapped`]): the CSR sections
    /// are adopted zero-copy out of the mapping instead of being re-read
    /// and re-allocated, so a large tenant graph costs page-cache
    /// references, not a heap copy.
    pub fn load_tenant_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
        config: TenantConfig,
    ) -> Result<TenantId, ServeError> {
        let snap = graph_core::load_snapshot_mapped(path, graph_core::SnapshotVerify::Eager)
            .map_err(|e| ServeError::Snapshot(e.to_string()))?;
        self.add_tenant(snap.into_graph(), config)
    }

    /// The default tenant's data graph.
    pub fn graph(&self) -> &Graph {
        self.inner.default_tenant.graph.as_ref()
    }

    /// A tenant's loaded data graph.
    pub fn tenant_graph(&self, tenant: TenantId) -> Result<Arc<Graph>, ServeError> {
        Ok(Arc::clone(&self.inner.tenant(tenant)?.graph))
    }

    /// Bumps a tenant's graph epoch (after mutating/replacing its graph),
    /// invalidating every cached plan and tier-2 artifact for it — other
    /// tenants' residency and hit rates are untouched. Returns the new
    /// epoch.
    pub fn bump_epoch(&self, tenant: TenantId) -> Result<u64, ServeError> {
        let state = self.inner.tenant(tenant)?;
        let epoch = state.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        // Tier 1 needs no clearing: the epoch is inside the PlanKey, so
        // stale plans can never hit and age out by LRU. Tier-2 payloads
        // are megabytes — drop them eagerly instead of letting stale
        // artifacts squat the byte budget until eviction.
        state
            .cst_cache
            .plock()
            .clear();
        Ok(epoch)
    }

    /// Submits a query for the default tenant. **Non-blocking**: the
    /// submission is enqueued on the tenant's DRR lane and the handle
    /// returned immediately; execution permits (`max_in_flight`) are
    /// taken at pickup, not here. [`SessionHandle::wait`] stays the
    /// blocking side of the API.
    pub fn submit(&self, query: QueryGraph) -> SessionHandle {
        self.submit_for(TenantId::DEFAULT, query)
            .expect("default tenant always exists")
    }

    /// Submits a query for `tenant` — non-blocking, as [`Self::submit`].
    /// Fails typed with [`ServeError::ShuttingDown`] once shutdown has
    /// begun.
    pub fn submit_for(
        &self,
        tenant: TenantId,
        query: QueryGraph,
    ) -> Result<SessionHandle, ServeError> {
        let state = self.inner.tenant(tenant)?;
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        self.inner.gate.plock().admitted += 1;
        Ok(self.enqueue(state, query))
    }

    /// Admission with typed backpressure for the default tenant: at the
    /// admission bound (`max_in_flight` sessions admitted and not yet
    /// finished) the submission is rejected with
    /// [`ServeError::Saturated`] instead of queueing without limit.
    pub fn try_submit(&self, query: QueryGraph) -> Result<SessionHandle, ServeError> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        {
            // Check-and-claim under one gate lock: two racing
            // `try_submit`s can never both squeeze past the bound.
            let mut gate = self.inner.gate.plock();
            if gate.admitted >= self.inner.config.max_in_flight {
                return Err(ServeError::Saturated);
            }
            gate.admitted += 1;
        }
        Ok(self.enqueue(Arc::clone(&self.inner.default_tenant), query))
    }

    fn enqueue(&self, tenant: Arc<TenantState>, query: QueryGraph) -> SessionHandle {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let tenant_id = tenant.id;
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        {
            let mut m = self.inner.metrics.plock();
            m.submitted += 1;
            m.first_submit.get_or_insert(now);
        }
        {
            let mut m = tenant.metrics.plock();
            m.submitted += 1;
            m.first_submit.get_or_insert(now);
        }
        self.inner.hooks.submitted.inc();
        let submission = Submission {
            id,
            tenant,
            query,
            submitted: now,
            submitted_ns: obs::now_ns(),
            tx,
        };
        let pushed = self
            .inner
            .queue
            .plock()
            .push(tenant_id, submission);
        debug_assert!(pushed, "validated tenant must have a lane");
        notify_executors(&self.inner);
        SessionHandle {
            id,
            tenant: tenant_id,
            rx,
        }
    }

    /// A point-in-time service report (callable while serving). Each lock
    /// is taken briefly in turn to snapshot its state; the histogram
    /// aggregation runs with no lock held, so a report never stalls
    /// admission or dispatch.
    pub fn report(&self) -> ServeReport {
        let metrics = self.inner.metrics.plock().clone();
        let tenants: Vec<Arc<TenantState>> = self
            .inner
            .tenants
            .pread()
            .values()
            .cloned()
            .collect();
        let mut cache = CacheStats::default();
        let mut cst_cache = CacheStats::default();
        let mut cst_resident_bytes = 0usize;
        let mut summaries = Vec::with_capacity(tenants.len());
        for t in &tenants {
            cache.absorb(&t.cache.plock().stats());
            {
                let cc = t.cst_cache.plock();
                cst_cache.absorb(&cc.stats());
                cst_resident_bytes += cc.resident_bytes();
            }
            summaries.push(tenant_summary(t));
        }
        let pool = {
            let devices = self.inner.devices.plock();
            PoolView {
                stats: devices.snapshot(),
                makespan_sec: devices.makespan_sec(),
                busy_sec: devices.busy_sec(),
                imbalance: devices.imbalance(),
            }
        };
        let max_seen = self.inner.gate.plock().max_seen;
        assemble_report(
            &metrics,
            cache,
            cst_cache,
            cst_resident_bytes,
            &pool,
            max_seen,
            summaries,
        )
    }

    /// A single tenant's report slice.
    pub fn tenant_report(&self, tenant: TenantId) -> Result<TenantSummary, ServeError> {
        let state = self.inner.tenant(tenant)?;
        Ok(tenant_summary(&state))
    }

    /// A rolling-window report: everything since the previous
    /// `report_window` call (or service start, for the first window).
    /// Integer counters and histogram bucket counts are exact deltas of
    /// the lifetime state — summing them across every window of a run
    /// reconciles bit-exactly with the final lifetime [`ServeReport`].
    /// Point-in-time fields (`cst_resident_bytes`, device health and
    /// outstanding workload, `max_in_flight`) are current values, and the
    /// per-tenant slices are empty — windows slice time, not tenants.
    pub fn report_window(&self) -> ServeReport {
        let now = Instant::now();
        // Snapshot cumulative state (same brief per-lock passes as
        // `report`), then delta against the stored baseline.
        let metrics = self.inner.metrics.plock().clone();
        let tenants: Vec<Arc<TenantState>> =
            self.inner.tenants.pread().values().cloned().collect();
        let mut cache = CacheStats::default();
        let mut cst_cache = CacheStats::default();
        let mut cst_resident_bytes = 0usize;
        for t in &tenants {
            cache.absorb(&t.cache.plock().stats());
            {
                let cc = t.cst_cache.plock();
                cst_cache.absorb(&cc.stats());
                cst_resident_bytes += cc.resident_bytes();
            }
        }
        let device_stats = self.inner.devices.plock().snapshot();
        let max_seen = self.inner.gate.plock().max_seen;

        let mut window = self.inner.window.plock();
        let wall_sec = now.duration_since(window.taken_at).as_secs_f64();
        let mut delta = metrics.delta(&window.metrics);
        // The window wall is baseline→now, not first-submit→last-done.
        delta.first_submit = Some(window.taken_at);
        delta.last_done = Some(now);
        let cache_delta = cache.delta(&window.cache);
        let cst_delta = cst_cache.delta(&window.cst_cache);
        let stats_delta: Vec<DeviceStats> = device_stats
            .iter()
            .enumerate()
            .map(|(i, d)| window.devices.get(i).map_or(*d, |base| d.delta(base)))
            .collect();
        let seq = window.seq;
        // Advance the baseline: the next window starts here.
        window.seq += 1;
        window.taken_at = now;
        window.metrics = metrics;
        window.cache = cache;
        window.cst_cache = cst_cache;
        window.devices = device_stats;
        drop(window);

        let pool = PoolView::from_stats(stats_delta);
        let mut report = assemble_report(
            &delta,
            cache_delta,
            cst_delta,
            cst_resident_bytes,
            &pool,
            max_seen,
            Vec::new(),
        );
        report.window = Some(crate::metrics::WindowInfo { seq, wall_sec });
        debug_assert!(report.is_finite());
        report
    }

    /// Prometheus text exposition: the global `obs` registry (hot-path
    /// counters, health gauges) followed by the report-derived `serve_*`
    /// metrics and the cumulative latency histogram.
    pub fn prometheus_text(&self) -> String {
        let mut out = obs::registry().prometheus_text();
        out.push_str(&self.report().prometheus_text());
        out
    }

    /// Deterministic shutdown: stops accepting submissions, runs every
    /// **in-flight** session to completion, sheds every queued-but-never-
    /// started session with [`ServeError::ShuttingDown`] (no waiter ever
    /// hangs), joins the executors, and returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop_workers();
        self.report()
    }

    fn stop_workers(&mut self) {
        self.inner.shutting_down.store(true, Ordering::Release);
        notify_executors(&self.inner);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // A submission can race the flag: checked before the store,
        // enqueued after the executors drained and exited. Shed any such
        // straggler here so its handle resolves typed instead of hanging.
        loop {
            let sub = {
                let mut gate = self.inner.gate.plock();
                let mut queue = self.inner.queue.plock();
                match queue.pop() {
                    Some(sub) => {
                        gate.admitted = gate.admitted.saturating_sub(1);
                        Some(sub)
                    }
                    None => None,
                }
            };
            match sub {
                Some(sub) => shed_for_shutdown(&self.inner, sub),
                None => break,
            }
        }
    }
}

impl Drop for FastService {
    fn drop(&mut self) {
        // `shutdown` already joined; otherwise the same deterministic
        // drain — in-flight sessions complete, queued ones shed typed.
        self.stop_workers();
    }
}

/// Builds a tenant's plan-cache partition: a per-tenant entry-count
/// override wins; otherwise the service-wide byte budget (when set) or the
/// service-wide entry capacity.
fn plan_cache_for(config: &ServeConfig, capacity_override: Option<usize>) -> PlanCache {
    match (capacity_override, config.plan_cache_bytes) {
        (Some(entries), _) => PlanCache::new(entries),
        (None, Some(bytes)) => PlanCache::with_budget(CacheBudget::Bytes(bytes)),
        (None, None) => PlanCache::new(config.cache_capacity),
    }
}

fn tenant_summary(t: &TenantState) -> TenantSummary {
    let m = t.metrics.plock().clone();
    let cache = t.cache.plock().stats();
    let (cst_stats, cst_resident_bytes) = {
        let cc = t.cst_cache.plock();
        (cc.stats(), cc.resident_bytes())
    };
    let wall_sec = match (m.first_submit, m.last_done) {
        (Some(a), Some(b)) => b.saturating_duration_since(a).as_secs_f64(),
        _ => 0.0,
    };
    TenantSummary {
        tenant: t.id,
        quota: t.quota,
        epoch: t.epoch.load(Ordering::Relaxed),
        submitted: m.submitted,
        completed: m.completed,
        failed: m.failed,
        deadline_misses: m.deadline_misses,
        retries: m.retries,
        failovers: m.failovers,
        corruption_catches: m.corruption_catches,
        degraded_sec: m.degraded_sec,
        total_embeddings: m.total_embeddings,
        qps: if wall_sec > 0.0 {
            m.completed as f64 / wall_sec
        } else {
            0.0
        },
        // Histogram nearest-rank quantiles: one bucket scan each, no
        // per-report sort (the predecessor sorted the full sample vector
        // twice per summary).
        latency_p50: m.latencies.quantile(0.50),
        latency_p99: m.latencies.quantile(0.99),
        hit_rate: cache.hit_rate(),
        cst_hit_rate: cst_stats.hit_rate(),
        cst_resident_bytes,
    }
}

#[allow(clippy::too_many_arguments)]
fn assemble_report(
    m: &MetricsState,
    cache: CacheStats,
    cst_cache: CacheStats,
    cst_resident_bytes: usize,
    pool: &PoolView,
    max_in_flight: usize,
    tenants: Vec<TenantSummary>,
) -> ServeReport {
    let wall_sec = match (m.first_submit, m.last_done) {
        (Some(a), Some(b)) => b.saturating_duration_since(a).as_secs_f64(),
        _ => 0.0,
    };
    let mut report = ServeReport {
        submitted: m.submitted,
        completed: m.completed,
        failed: m.failed,
        deadline_misses: m.deadline_misses,
        retries: m.retries,
        failovers: m.failovers,
        // Quarantines live on the devices, not the sessions: the pool
        // snapshot is their ground truth.
        quarantines: pool.stats.iter().map(|d| d.quarantines).sum(),
        corruption_catches: m.corruption_catches,
        degraded_sec: m.degraded_sec,
        total_embeddings: m.total_embeddings,
        cache,
        cst_cache,
        cst_resident_bytes,
        // Degenerate walls must never surface NaN/inf: a report taken
        // before any completion has no wall at all, and a single session
        // can complete within one clock tick (`wall_sec == 0.0` with
        // `completed > 0`). Both collapse to QPS 0 rather than dividing.
        qps: if wall_sec > 0.0 {
            m.completed as f64 / wall_sec
        } else {
            0.0
        },
        wall_sec,
        device_makespan_sec: pool.makespan_sec,
        device_busy_sec: pool.busy_sec,
        device_imbalance: pool.imbalance,
        devices: pool.stats.clone(),
        max_in_flight,
        tenants,
        ..ServeReport::default()
    };
    report.aggregate(
        &m.latencies,
        &m.queue_waits,
        &m.device_queues,
        &m.plan_hits,
        &m.plan_misses,
        &m.build_hits,
        &m.build_misses,
    );
    debug_assert!(report.is_finite(), "report must never surface NaN/inf");
    report
}

/// Releases a single-flight claim on drop — including on a panicking
/// unwind — and re-enqueues every parked waiter as a `Resume` task, so
/// a wedged owner can never strand its waiters.
struct FlightGuard<'a> {
    inner: &'a Inner,
    key: (TenantId, PlanKey),
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let waiters = self.inner.pending_plans.plock().remove(&self.key);
        for sid in waiters.into_iter().flatten() {
            push_task(self.inner, Task::Resume(sid));
        }
    }
}

/// Bumps the wake sequence and wakes every idle executor. Called by all
/// producers: submissions, task pushes, partition completions, permit
/// releases, shutdown.
fn notify_executors(inner: &Inner) {
    *inner.wake.plock() += 1;
    inner.wake_cond.notify_all();
}

/// Routes a task to its session's home deque and wakes the executors.
fn push_task(inner: &Inner, task: Task) {
    let lane = (task.sid() as usize) % inner.deques.len();
    inner.deques[lane].plock().push_back(task);
    notify_executors(inner);
}

/// Pops the next task: own deque newest-first, then steal oldest-first
/// from the peers.
fn pop_task(inner: &Inner, me: usize) -> Option<Task> {
    if let Some(task) = inner.deques[me].plock().pop_back() {
        return Some(task);
    }
    let n = inner.deques.len();
    for step in 1..n {
        if let Some(task) = inner.deques[(me + step) % n].plock().pop_front() {
            return Some(task);
        }
    }
    None
}

/// Looks a session up in the slab; `None` means it was already retired
/// (a stale task or completion token) and the caller just returns.
fn session(inner: &Inner, sid: u64) -> Option<Arc<SessionSlot>> {
    inner.sessions.plock().get(&sid).cloned()
}

/// Runs one session task with panic containment: a panicking session is
/// retired as failed (permit released, slab entry dropped so its handle
/// sees `Disconnected`) and the executor itself keeps serving.
fn run_contained(inner: &Inner, sid: u64, f: impl FnOnce()) {
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_err() {
        panic_retire(inner, sid);
    }
}

/// The poll loop each executor thread runs. Priority order:
///
/// 1. **Completions** — resuming a dispatched session beats starting new
///    work, so with one executor each popped session runs to completion
///    before the next DRR pop (the completion-order witness the
///    multi-tenant fairness tests rank).
/// 2. Own deque (LIFO — the task it just produced, cache-warm).
/// 3. Steal from a peer (FIFO — the oldest parked work).
/// 4. Pick up the next queued submission, if a permit is free.
/// 5. Idle: exit once shutdown has drained everything, else sleep until
///    a producer bumps the wake sequence.
fn executor_loop(inner: &Arc<Inner>, me: usize) {
    loop {
        // Snapshot the wake sequence *before* scanning: a producer that
        // lands mid-scan bumps it, and the wait below falls through.
        let seen = *inner.wake.plock();
        let completion = inner.devices.plock().pop_completion();
        if let Some(sid) = completion {
            run_contained(inner, sid, || on_completion(inner, sid));
            continue;
        }
        if let Some(task) = pop_task(inner, me) {
            let sid = task.sid();
            run_contained(inner, sid, || run_task(inner, task));
            continue;
        }
        if pickup(inner) {
            continue;
        }
        if inner.shutting_down.load(Ordering::Acquire) && drained(inner) {
            return;
        }
        let wake = inner.wake.plock();
        if *wake == seen {
            drop(pwait(&inner.wake_cond, wake));
        }
    }
}

/// Whether shutdown has nothing left to drain: no admitted session in
/// any state (queued, parked, dispatched) and no stray task or token.
fn drained(inner: &Inner) -> bool {
    let queue_idle = {
        let queue = inner.queue.plock();
        queue.len() == 0 && queue.parked_total() == 0
    };
    queue_idle
        && inner.gate.plock().admitted == 0
        && inner.devices.plock().pending_completions() == 0
        && inner.deques.iter().all(|d| d.plock().is_empty())
}

/// Tries to admit the next queued submission. Returns `true` if it did
/// anything (served a pickup or shed at shutdown), `false` on an empty
/// queue or exhausted permits.
fn pickup(inner: &Inner) -> bool {
    let shutting_down = inner.shutting_down.load(Ordering::Acquire);
    let (sub, shed) = {
        // gate → queue is the one nested lock order in the service.
        let mut gate = inner.gate.plock();
        if !shutting_down && gate.in_flight >= inner.config.max_in_flight {
            return false;
        }
        let mut queue = inner.queue.plock();
        let Some(sub) = queue.pop() else {
            return false;
        };
        if shutting_down {
            // Queued-never-started sessions are shed typed at shutdown;
            // they held no execution permit, only an admitted slot.
            gate.admitted = gate.admitted.saturating_sub(1);
            (sub, true)
        } else {
            gate.in_flight += 1;
            gate.max_seen = gate.max_seen.max(gate.in_flight);
            inner.hooks.in_flight.set(gate.in_flight as f64);
            (sub, false)
        }
    };
    if shed {
        shed_for_shutdown(inner, sub);
        return true;
    }
    let sid = sub.id;
    let slot = Arc::new(SessionSlot::new(sub));
    inner.sessions.plock().insert(sid, Arc::clone(&slot));
    run_contained(inner, sid, || run_task(inner, Task::Start(sid)));
    true
}

/// Sheds a queued submission at shutdown with the typed error. The
/// session never started: there is no slab entry or permit to release —
/// only the failure accounting, the closing spans, and the final event.
fn shed_for_shutdown(inner: &Inner, sub: Submission) {
    let strack = obs::session_track(sub.id);
    obs::record_span(
        strack,
        "queue_wait",
        "serve",
        sub.submitted_ns,
        obs::now_ns(),
        Vec::new(),
    );
    finish(inner, &sub.tenant, FinishOutcome::Failed);
    obs::record_span(
        strack,
        "session",
        "serve",
        sub.submitted_ns,
        obs::now_ns(),
        vec![
            ("tenant", obs::ArgValue::U64(sub.tenant.id.raw() as u64)),
            ("outcome", obs::ArgValue::Str("shutdown")),
            ("embeddings", obs::ArgValue::U64(0)),
        ],
    );
    let _ = sub.tx.send(SessionEvent::Failed(ServeError::ShuttingDown));
    notify_executors(inner);
}

fn run_task(inner: &Inner, task: Task) {
    match task {
        Task::Start(sid) => run_admit(inner, sid, false),
        Task::Resume(sid) => run_admit(inner, sid, true),
        Task::Exec(sid) => run_exec(inner, sid),
    }
}

/// Drives a session from pickup (or resume) through planning and build
/// to its first staged partition — or straight to retirement.
fn run_admit(inner: &Inner, sid: u64, resumed: bool) {
    let Some(slot) = session(inner, sid) else { return };
    // Everything this task records — queue wait, plan, build and the
    // backend execute spans down the call stack — lands on the
    // session's own track, re-entered per task.
    let _track = obs::set_track(obs::session_track(sid));
    if resumed {
        // Reverse the park bookkeeping; the DRR lane itself never held
        // this session (it was popped at pickup).
        inner.queue.plock().unpark(slot.tenant.id);
    }
    match build_session(inner, &slot, resumed) {
        BuildOutcome::Parked => {}
        BuildOutcome::Shed(at) => finalize(inner, &slot, SessionOutcome::Shed { at }),
        BuildOutcome::Failed(err) => finalize(inner, &slot, SessionOutcome::Error(err)),
        BuildOutcome::Ready => {
            if slot.mu.plock().jobs.is_empty() {
                finalize(inner, &slot, SessionOutcome::Completed);
            } else {
                push_task(inner, Task::Exec(sid));
            }
        }
    }
}

enum BuildOutcome {
    /// Parked on another session's flight; a `Resume` task re-enters.
    Parked,
    /// The deadline passed at this transition (`&'static str` names it).
    Shed(&'static str),
    Failed(ServeError),
    /// Partitions staged (possibly zero); ready for `Exec` tasks.
    Ready,
}

/// The planning/build half of a session: queue-wait accounting, plan
/// derivation, the two-tier cache resolution under the single-flight
/// gate, and the partition-staging build.
fn build_session(inner: &Inner, slot: &SessionSlot, resumed: bool) -> BuildOutcome {
    let strack = obs::session_track(slot.id);
    let q = &slot.query;
    let tenant = &slot.tenant;
    let g: &Graph = &tenant.graph;
    let deadline = tenant.deadline;

    if !resumed {
        let picked = Instant::now();
        let picked_ns = obs::now_ns();
        let queue_wait = picked.duration_since(slot.submitted);
        obs::record_span(
            strack,
            "queue_wait",
            "serve",
            slot.submitted_ns,
            picked_ns,
            Vec::new(),
        );
        {
            let mut s = slot.mu.plock();
            s.stage = Stage::Planning;
            s.stats.picked = Some(picked);
            s.stats.queue_wait = queue_wait;
        }
        // Deadline shed at pickup: a session that waited out its whole
        // budget in the queue does no work at all — shedding it is what
        // keeps a backlogged DRR lane from stalling every tenant behind
        // doomed work.
        if let Some(dl) = deadline {
            if queue_wait > dl {
                return BuildOutcome::Shed("pickup");
            }
        }
        // Derive tree/order/kernel-plan once; the cache key reuses this
        // tree, and partition tasks share the result through an Arc.
        let root = select_root(q, g);
        let tree = BfsTree::new(q, root);
        let order = path_based_order(q, &tree, g);
        let kernel_plan = match KernelPlan::new(q, &order, &tree) {
            Ok(p) => p,
            Err(e) => return BuildOutcome::Failed(ServeError::Failed(e.to_string())),
        };
        slot.mu.plock().plan = Some(Arc::new(SessionPlan {
            tree,
            order,
            kernel_plan,
            collect: inner.config.fast.collect,
        }));
    } else if let Some(dl) = deadline {
        // Deadline re-check at the PlanWait → Planning transition: a
        // session that waited out its budget parked on someone else's
        // flight sheds on resume instead of building doomed work.
        if slot.submitted.elapsed() > dl {
            return BuildOutcome::Shed("resume");
        }
    }
    let plan = Arc::clone(
        slot.mu
            .plock()
            .plan
            .as_ref()
            .expect("plan derived at pickup"),
    );
    let tree = &plan.tree;

    // Two-tier lookup under one single-flight gate, keyed (tenant, key):
    //
    // * **Tier-2 hit** — the refined shard CSTs *and* their partition
    //   decomposition replay through `FastConfig::prepared`: no planning,
    //   no build, no partitioning — the session is pure dispatch + kernel.
    //   No flight is claimed (there is nothing left to compute).
    // * **Tier-2 miss, plan hit** — the stored plan skips the probe and
    //   the build is seeded from its riding probe, as before tier 2. With
    //   tier 2 enabled the flight is **held through the build** and the
    //   finished artifact is inserted before release, so N identical
    //   concurrent cold sessions build the shard CSTs exactly once:
    //   waiters wake straight into a tier-2 hit.
    // * **Both miss** — the plan is computed *here* (the same
    //   `plan_pipeline_shards` the pipeline would call) and published
    //   immediately. With tier 2 disabled the flight is released at plan
    //   publication (waiters need only the plan); with tier 2 enabled it
    //   is held through the build as above.
    let mut config = inner.config.fast.clone();
    let pipe_opts = config.pipeline_options(q.vertex_count());
    let epoch = tenant.epoch.load(Ordering::Relaxed);
    let key = PlanKey::derive(q, tree, &pipe_opts, epoch);
    let flight_key = (tenant.id, key);
    let cache_enabled = tenant.cache.plock().capacity() > 0;
    let cst_enabled = tenant.cst_cache.plock().budget_bytes() > 0;
    let mut cached_plan = None;
    let mut cached_artifact = None;
    let mut flight = None;
    if cache_enabled || cst_enabled {
        let mut pending = inner.pending_plans.plock();
        if let Some(waiters) = pending.get_mut(&flight_key) {
            // The key is being computed right now. Park: register as a
            // waiter (the owner's flight release re-enqueues a Resume
            // task) and take the session off its tenant's deficit board
            // — no executor thread blocks on it.
            waiters.push(slot.id);
            drop(pending);
            slot.mu.plock().stage = Stage::PlanWait;
            inner.queue.plock().park(tenant.id);
            return BuildOutcome::Parked;
        }
        // Tier 2 first: a hit needs neither the plan nor a flight. (The
        // plan cache deliberately sees no lookup — its counters then
        // measure only the sessions that actually needed a plan.)
        if cst_enabled {
            cached_artifact = tenant.cst_cache.plock().get(&key);
        }
        if cached_artifact.is_none() {
            if cache_enabled {
                cached_plan = tenant.cache.plock().get(&key);
            }
            if cached_plan.is_none() || cst_enabled {
                pending.insert(flight_key, Vec::new());
                flight = Some(FlightGuard {
                    inner,
                    key: flight_key,
                });
            }
        }
    } else {
        // Both tiers disabled ("cold" serving): every lookup misses, and
        // both tiers' counters record it.
        cached_artifact = tenant.cst_cache.plock().get(&key);
        cached_plan = tenant.cache.plock().get(&key);
    }
    let cst_cache_hit = cached_artifact.is_some();
    let plan_hit = cached_plan.is_some();
    let mut measured_plan_time = Duration::ZERO;
    if let Some(artifact) = cached_artifact {
        // Fully warm: `prepare_partitions` streams the artifact's
        // partitions straight into the staging sink below.
        config.prepared = Some(artifact);
    } else {
        let shard_plan = match cached_plan {
            Some(plan) => plan,
            None => {
                let t0 = Instant::now();
                let t0_ns = obs::now_ns();
                let roots = cst::root_candidates(q, g, tree, pipe_opts.cst);
                let shard_plan =
                    Arc::new(cst::plan_pipeline_shards(q, g, tree, &pipe_opts, &roots));
                measured_plan_time = t0.elapsed();
                obs::record_span(strack, "plan", "serve", t0_ns, obs::now_ns(), Vec::new());
                if cache_enabled {
                    tenant.cache.plock().insert(key, Arc::clone(&shard_plan));
                }
                shard_plan
            }
        };
        config.shard_plan = Some(shard_plan);
        config.capture_prepared = cst_enabled;
        if !cst_enabled {
            // The plan is published; waiters wake straight into a plan
            // hit while this session goes on to build and execute. (With
            // tier 2 enabled the flight instead outlives the build — see
            // the artifact insert after `prepare_partitions`.)
            drop(flight.take());
        }
    }

    slot.mu.plock().stage = Stage::Building;
    // The "build" span (recorded at retirement, completed sessions only)
    // starts here and ends after the last partition executes, so every
    // backend `execute` span nests inside it — including on a tier-2
    // replay, where the `tier2_hit` arg marks that nothing was built.
    let build_start_ns = obs::now_ns();
    // The sink only *stages* partitions — execution happens in `Exec`
    // tasks — so the sink wall nets staging (not kernels) out of
    // `partition_time`, keeping the build/execute split's meaning from
    // the threaded layer.
    let mut jobs = VecDeque::new();
    let mut sink_exec = Duration::ZERO;
    let prep = prepare_partitions(q, g, &config, tree, &plan.order, &mut |job| {
        let sink_start = Instant::now();
        jobs.push_back(job);
        sink_exec += sink_start.elapsed();
    });
    // Tier-2 insert: capture is part of the build, so the artifact is
    // complete when `prepare_partitions` returns. Insert *before*
    // dropping the flight — waiters wake straight into a tier-2 hit,
    // making N identical concurrent cold sessions build exactly once.
    // (An artifact larger than the whole budget is rejected by the
    // cache, counted, and the working set stays untouched; its waiters
    // then build in turn.)
    if let Some(artifact) = prep.prepared.as_ref() {
        tenant.cst_cache.plock().insert(key, Arc::clone(artifact));
    }
    drop(flight);
    {
        let mut s = slot.mu.plock();
        s.stats.build_start_ns = build_start_ns;
        s.stats.plan_time = measured_plan_time + prep.plan_time;
        // Build + partition wall net of sink time. Exactly zero on a
        // tier-2 hit: the replay does no build or partition work at all.
        s.stats.build_time = prep.build_wall + prep.partition_time.saturating_sub(sink_exec);
        s.stats.topdown_entries = prep.build_topdown_entries;
        s.stats.pipeline_shards = prep.pipeline_shards;
        s.stats.seeded_shards = prep.seeded_shards;
        s.stats.plan_hit = plan_hit;
        s.stats.cst_cache_hit = cst_cache_hit;
        s.jobs = jobs;
        s.stage = Stage::Dispatched;
    }
    BuildOutcome::Ready
}

/// Executes one staged partition: pops it under the session lock, runs
/// the full fault-tolerant execution *without* the lock, folds the
/// result back, and parks the session on the pool's completion queue.
fn run_exec(inner: &Inner, sid: u64) {
    let Some(slot) = session(inner, sid) else { return };
    let _track = obs::set_track(obs::session_track(sid));
    let deadline = slot.tenant.deadline;
    let (job, plan) = {
        let mut s = slot.mu.plock();
        if s.finished {
            return;
        }
        if s.session_err.is_none() {
            if let Some(dl) = deadline {
                // Deadline re-check at the dispatch transition: a
                // session past its budget sheds instead of executing
                // another partition.
                if slot.submitted.elapsed() > dl {
                    s.session_err = Some(ServeError::DeadlineExceeded);
                }
            }
        }
        if s.session_err.is_some() {
            drop(s);
            finalize_from_state(inner, &slot);
            return;
        }
        let Some(job) = s.jobs.pop_front() else {
            drop(s);
            finalize_from_state(inner, &slot);
            return;
        };
        if s.jobs.is_empty() {
            s.stage = Stage::Draining;
        }
        (
            job,
            Arc::clone(s.plan.as_ref().expect("dispatched session has a plan")),
        )
    };
    let ctx = QueryCtx {
        query: &slot.query,
        graph: &slot.tenant.graph,
        order: &plan.order,
        kernel_plan: &plan.kernel_plan,
        collect: plan.collect,
    };
    let policy = &inner.config.fault;
    let mut acc = FaultAcc::default();
    match execute_checked(inner, policy, &job, &ctx, &mut acc) {
        Ok((device, class, out)) => {
            {
                let mut s = slot.mu.plock();
                fold_acc(&mut s.stats.acc, &acc);
                s.stats.embeddings += out.embeddings;
                s.stats.partitions += 1;
                s.stats.kernel_cycles += out.kernel_cycles;
                s.stats.device_sec += out.modeled_sec;
            }
            let _ = slot.tx.send(SessionEvent::Partition(PartitionUpdate {
                index: job.index,
                device,
                backend: class,
                embeddings: out.embeddings,
                kernel_cycles: out.kernel_cycles,
                modeled_sec: out.modeled_sec,
                collected: out.collected,
            }));
        }
        Err(e) => {
            let mut s = slot.mu.plock();
            fold_acc(&mut s.stats.acc, &acc);
            s.session_err = Some(e);
        }
    }
    // The partition is done: hand the session to the pool's completion
    // queue; whichever executor drains it next resumes the session.
    inner.devices.plock().push_completion(sid);
    notify_executors(inner);
}

/// Resumes a session whose partition just completed: retire it if it is
/// done (or doomed), otherwise queue the next `Exec` task.
fn on_completion(inner: &Inner, sid: u64) {
    let Some(slot) = session(inner, sid) else { return };
    let _track = obs::set_track(obs::session_track(sid));
    let done = {
        let mut s = slot.mu.plock();
        if s.finished {
            return;
        }
        debug_assert!(matches!(s.stage, Stage::Dispatched | Stage::Draining));
        if s.session_err.is_none() && !s.jobs.is_empty() {
            if let Some(dl) = slot.tenant.deadline {
                // Deadline re-check at the completion transition.
                if slot.submitted.elapsed() > dl {
                    s.session_err = Some(ServeError::DeadlineExceeded);
                }
            }
        }
        s.session_err.is_some() || s.jobs.is_empty()
    };
    if done {
        finalize_from_state(inner, &slot);
    } else {
        push_task(inner, Task::Exec(sid));
    }
}

/// Folds one partition's fault accounting into the session total.
fn fold_acc(total: &mut FaultAcc, part: &FaultAcc) {
    total.retries += part.retries;
    total.failovers += part.failovers;
    total.corruption_catches += part.corruption_catches;
    total.degraded_sec += part.degraded_sec;
    // Worst queue any partition joined behind, same as the inline layer.
    total.device_queue_sec = total.device_queue_sec.max(part.device_queue_sec);
}

/// How a session retires.
enum SessionOutcome {
    Completed,
    /// Shed past its deadline; `at` names the transition that caught it.
    Shed { at: &'static str },
    Error(ServeError),
}

/// Maps the session's latched state to its retirement: a latched error
/// becomes the typed failure (a latched deadline sheds "mid-session"),
/// no error means it completed.
fn finalize_from_state(inner: &Inner, slot: &SessionSlot) {
    let err = slot.mu.plock().session_err.clone();
    match err {
        None => finalize(inner, slot, SessionOutcome::Completed),
        Some(ServeError::DeadlineExceeded) => {
            finalize(inner, slot, SessionOutcome::Shed { at: "mid-session" })
        }
        Some(e) => finalize(inner, slot, SessionOutcome::Error(e)),
    }
}

/// Retires a session exactly once: folds its fault accounting and
/// outcome into service + tenant metrics, records the closing spans,
/// notifies the handle, and releases its execution permit and slab
/// entry. The `finished` flag flips first, under the session lock —
/// every racing caller (a stale task, a panic handler) sees it and
/// backs off, so the permit can never be released twice.
fn finalize(inner: &Inner, slot: &SessionSlot, outcome: SessionOutcome) {
    let stats = {
        let mut s = slot.mu.plock();
        if s.finished {
            return;
        }
        s.finished = true;
        s.stage = match outcome {
            SessionOutcome::Shed { .. } => Stage::Shed,
            _ => Stage::Done,
        };
        s.stats.clone()
    };
    let tenant = &slot.tenant;
    let strack = obs::session_track(slot.id);
    // Fault counters fold whatever the outcome — a session that retried
    // five times and then missed its deadline still did the retries, and
    // the chaos accounting reconciles service counters against
    // per-device failure counters.
    fold_faults(inner, tenant, &stats.acc);
    match outcome {
        SessionOutcome::Completed => {
            let now = Instant::now();
            let picked = stats.picked.unwrap_or(now);
            let report = QueryReport {
                id: slot.id,
                tenant: tenant.id,
                completion_seq: inner.next_seq.fetch_add(1, Ordering::Relaxed),
                embeddings: stats.embeddings,
                partitions: stats.partitions,
                cache_hit: stats.plan_hit || stats.cst_cache_hit,
                cst_cache_hit: stats.cst_cache_hit,
                plan_time: stats.plan_time,
                build_time: stats.build_time,
                topdown_entries: stats.topdown_entries,
                pipeline_shards: stats.pipeline_shards,
                seeded_shards: stats.seeded_shards,
                service_time: now.duration_since(picked),
                queue_wait: stats.queue_wait,
                device_queue_sec: stats.acc.device_queue_sec,
                latency: now.duration_since(slot.submitted)
                    + Duration::from_secs_f64(stats.acc.device_queue_sec),
                kernel_cycles: stats.kernel_cycles,
                device_sec: stats.device_sec,
                retries: stats.acc.retries,
                failovers: stats.acc.failovers,
                corruption_catches: stats.acc.corruption_catches,
                degraded_sec: stats.acc.degraded_sec,
            };
            finish(inner, tenant, FinishOutcome::Completed(report.clone()));
            // One "build" span per *completed* session, covering build
            // through last execution — the span the nesting check and
            // the per-completion span counts pin.
            obs::record_span(
                strack,
                "build",
                "serve",
                stats.build_start_ns,
                obs::now_ns(),
                vec![
                    ("tier2_hit", obs::ArgValue::U64(stats.cst_cache_hit as u64)),
                    ("plan_hit", obs::ArgValue::U64(stats.plan_hit as u64)),
                    ("shards", obs::ArgValue::U64(stats.pipeline_shards as u64)),
                    ("seeded", obs::ArgValue::U64(stats.seeded_shards as u64)),
                ],
            );
            close_session(strack, slot, "completed", stats.embeddings);
            let _ = slot.tx.send(SessionEvent::Done(report));
        }
        SessionOutcome::Shed { at } => {
            finish(inner, tenant, FinishOutcome::DeadlineMiss);
            obs::event("deadline_shed", "fault", vec![("at", obs::ArgValue::Str(at))]);
            close_session(strack, slot, "shed", stats.embeddings);
            let _ = slot
                .tx
                .send(SessionEvent::Failed(ServeError::DeadlineExceeded));
        }
        SessionOutcome::Error(err) => {
            finish(inner, tenant, FinishOutcome::Failed);
            close_session(strack, slot, "failed", stats.embeddings);
            let _ = slot.tx.send(SessionEvent::Failed(err));
        }
    }
    release(inner, slot.id);
}

/// Closes the session span (submit → now) with its outcome; recorded on
/// every exit path *before* the handle is notified, so a waiter that
/// snapshots the trace after `wait()` sees its own session.
fn close_session(strack: u64, slot: &SessionSlot, outcome: &'static str, embeddings: u64) {
    obs::record_span(
        strack,
        "session",
        "serve",
        slot.submitted_ns,
        obs::now_ns(),
        vec![
            ("tenant", obs::ArgValue::U64(slot.tenant.id.raw() as u64)),
            ("outcome", obs::ArgValue::Str(outcome)),
            ("embeddings", obs::ArgValue::U64(embeddings)),
        ],
    );
}

/// Releases a retired session's execution permit and slab entry, then
/// wakes the executors (a permit freed means a pickup may proceed; at
/// shutdown, `admitted` hitting zero is the exit signal).
fn release(inner: &Inner, sid: u64) {
    {
        let mut gate = inner.gate.plock();
        gate.in_flight = gate.in_flight.saturating_sub(1);
        gate.admitted = gate.admitted.saturating_sub(1);
        inner.hooks.in_flight.set(gate.in_flight as f64);
    }
    inner.sessions.plock().remove(&sid);
    notify_executors(inner);
}

/// Retires a session whose task panicked: counted as failed (the panic
/// already unwound past the normal retirement), permit and slab entry
/// released, handle left to observe `Disconnected` as the sender drops.
fn panic_retire(inner: &Inner, sid: u64) {
    let Some(slot) = session(inner, sid) else { return };
    {
        let mut s = slot.mu.plock();
        if s.finished {
            return;
        }
        s.finished = true;
        s.stage = Stage::Done;
    }
    let now = Instant::now();
    {
        let mut m = inner.metrics.plock();
        m.failed += 1;
        m.last_done = Some(now);
    }
    {
        let mut m = slot.tenant.metrics.plock();
        m.failed += 1;
        m.last_done = Some(now);
    }
    inner.hooks.failed.inc();
    release(inner, sid);
}

/// Per-session fault accounting, accumulated across every partition's
/// attempts and folded into service + tenant metrics whatever the
/// session's outcome.
#[derive(Default, Clone, Copy)]
struct FaultAcc {
    /// Failed execution attempts that were retried — bumps in lockstep
    /// with the failing device's `DeviceStats::failures`, which is the
    /// exactly-once accounting invariant the chaos tests reconcile.
    retries: u64,
    /// Retries that landed on a different device (reroutes).
    failovers: u64,
    /// Corrupted outputs caught and outvoted by the cross-check.
    corruption_catches: u64,
    /// Wall seconds executed on the emergency CPU fallback.
    degraded_sec: f64,
    /// Worst modelled device queue any partition joined behind.
    device_queue_sec: f64,
}

/// One fault-tolerant partition execution: bounded retries with
/// exponential backoff, rerouting away from the failing device, and the
/// emergency CPU fallback when no pool device is available. Returns the
/// executing device index (`pool.len()` for the fallback), its class, and
/// the output.
fn execute_resilient(
    inner: &Inner,
    policy: &FaultPolicy,
    job: &PartitionJob,
    ctx: &QueryCtx<'_>,
    avoid: Option<usize>,
    acc: &mut FaultAcc,
) -> Result<(usize, BackendClass, BackendOutput), ServeError> {
    let mut last_failed = avoid;
    let mut rerouting = false;
    for attempt in 1..=policy.max_attempts.max(1) {
        let admitted = inner.devices.plock().admit_avoiding(job.workload, last_failed);
        let (device, queued_sec, backend) = match admitted {
            Ok(a) => a,
            Err(_) => {
                // No healthy or probationary device left. Degraded mode:
                // the emergency CPU share answers (its wall is the
                // degraded-mode cost), or the session sheds typed.
                let Some(fallback) = inner.fallback.as_ref() else {
                    return Err(ServeError::Degraded);
                };
                obs::event(
                    "degraded",
                    "fault",
                    vec![("partition", obs::ArgValue::U64(job.index as u64))],
                );
                let t0 = Instant::now();
                let out = fallback.execute(job, ctx).map_err(|e| {
                    ServeError::Failed(format!("emergency CPU fallback failed: {e}"))
                })?;
                acc.degraded_sec += t0.elapsed().as_secs_f64();
                let virtual_idx = inner.devices.plock().len();
                return Ok((virtual_idx, fallback.spec().class, out));
            }
        };
        if rerouting && Some(device) != last_failed {
            acc.failovers += 1;
            obs::event(
                "failover",
                "fault",
                vec![("device", obs::ArgValue::U64(device as u64))],
            );
        }
        acc.device_queue_sec = acc.device_queue_sec.max(queued_sec);
        // Execute outside the pool lock: concurrent sessions overlap on
        // different devices. begin/complete is the poll seam: a future
        // device backend can return a pending step the executor parks on
        // instead of blocking a thread inside it.
        let step = backend.begin(job, ctx);
        match step.complete() {
            Ok(out) => {
                inner
                    .devices
                    .plock()
                    .complete(device, job.workload, out.modeled_sec, out.kernel_cycles);
                return Ok((device, backend.spec().class, out));
            }
            Err(e) => {
                inner
                    .devices
                    .plock()
                    .fail(device, job.workload, e.is_permanent());
                acc.retries += 1;
                obs::event(
                    "retry",
                    "fault",
                    vec![
                        ("device", obs::ArgValue::U64(device as u64)),
                        ("attempt", obs::ArgValue::U64(attempt as u64)),
                    ],
                );
                last_failed = Some(device);
                rerouting = true;
                if attempt == policy.max_attempts.max(1) {
                    return Err(ServeError::Failed(format!(
                        "partition {} failed after {attempt} attempts: {e}",
                        job.index
                    )));
                }
                // Exponential backoff, capped at 64× the base: models the
                // driver's re-queue cost without wedging the worker.
                let shift = (attempt - 1).min(6) as u32;
                let backoff = policy.backoff * (1u32 << shift);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
    unreachable!("the attempt loop always returns")
}

/// Total executions the cross-check may spend per partition before giving
/// up on agreement (first vote + up to three more).
const CROSS_CHECK_MAX_VOTES: usize = 4;

/// [`execute_resilient`] plus, when [`FaultPolicy::cross_check`] is on,
/// re-execution on a second device until two executions agree on
/// `(embeddings, collected)` — the embedding fingerprint. Disagreeing
/// devices are marked suspect (their corruption counts toward
/// quarantine). Results from the trusted CPU fallback skip the check, and
/// when the vote budget runs out without agreement the fallback (if
/// configured) arbitrates as ground truth.
fn execute_checked(
    inner: &Inner,
    policy: &FaultPolicy,
    job: &PartitionJob,
    ctx: &QueryCtx<'_>,
    acc: &mut FaultAcc,
) -> Result<(usize, BackendClass, BackendOutput), ServeError> {
    let first = execute_resilient(inner, policy, job, ctx, None, acc)?;
    let fallback_idx = inner.devices.plock().len();
    if !policy.cross_check || first.0 == fallback_idx {
        return Ok(first);
    }
    let mut votes = vec![first];
    loop {
        let avoid = votes.last().map(|v| v.0);
        let vote = execute_resilient(inner, policy, job, ctx, avoid, acc)?;
        if vote.0 == fallback_idx {
            // The fleet degraded mid-check: the fallback's answer is
            // ground truth; every disagreeing earlier vote was corrupt.
            for (d, _, o) in &votes {
                if o.embeddings != vote.2.embeddings || o.collected != vote.2.collected {
                    inner.devices.plock().mark_suspect(*d);
                    acc.corruption_catches += 1;
                }
            }
            return Ok(vote);
        }
        let agreed = votes
            .iter()
            .position(|(_, _, o)| {
                o.embeddings == vote.2.embeddings && o.collected == vote.2.collected
            });
        if let Some(winner) = agreed {
            // Two independent executions agree; corrupted outputs cannot
            // collide (the injected XOR mask is nonzero and per-call), so
            // every *other* vote was wrong — charge its device.
            for (i, (d, _, _)) in votes.iter().enumerate() {
                if i != winner {
                    inner.devices.plock().mark_suspect(*d);
                    acc.corruption_catches += 1;
                }
            }
            return Ok(vote);
        }
        votes.push(vote);
        if votes.len() >= CROSS_CHECK_MAX_VOTES {
            // No two executions agree within the vote budget. Arbitrate on
            // the trusted CPU fallback if there is one — its answer is
            // ground truth, so the session still completes bit-exact even
            // when most of the fleet lies; without a fallback the
            // partition fails typed.
            let Some(fallback) = inner.fallback.as_ref() else {
                return Err(ServeError::Failed(format!(
                    "partition {}: cross-check found no two agreeing executions in {} votes",
                    job.index,
                    votes.len()
                )));
            };
            let truth = fallback.execute(job, ctx).map_err(|e| {
                ServeError::Failed(format!("cross-check arbitration failed: {e}"))
            })?;
            for (d, _, o) in &votes {
                if o.embeddings != truth.embeddings || o.collected != truth.collected {
                    inner.devices.plock().mark_suspect(*d);
                    acc.corruption_catches += 1;
                }
            }
            return Ok((fallback_idx, fallback.spec().class, truth));
        }
    }
}

/// Folds a session's fault accounting into service + tenant metrics.
fn fold_faults(inner: &Inner, tenant: &TenantState, acc: &FaultAcc) {
    if acc.retries == 0 && acc.corruption_catches == 0 && acc.degraded_sec == 0.0 {
        return;
    }
    let fold = |m: &mut MetricsState| {
        m.retries += acc.retries;
        m.failovers += acc.failovers;
        m.corruption_catches += acc.corruption_catches;
        m.degraded_sec += acc.degraded_sec;
    };
    fold(&mut inner.metrics.plock());
    fold(&mut tenant.metrics.plock());
    inner.hooks.retries.add(acc.retries);
    inner.hooks.failovers.add(acc.failovers);
    inner.hooks.corruption_catches.add(acc.corruption_catches);
}

enum FinishOutcome {
    Completed(QueryReport),
    Failed,
    DeadlineMiss,
}

/// Folds a session's outcome into the service-wide and tenant metrics.
/// The execution permit is released by the session's retirement in
/// `release`, not here.
fn finish(inner: &Inner, tenant: &TenantState, outcome: FinishOutcome) {
    let now = Instant::now();
    let fold = |m: &mut MetricsState| match &outcome {
        FinishOutcome::Completed(report) => {
            m.completed += 1;
            m.total_embeddings += report.embeddings;
            m.latencies.record(report.latency.as_secs_f64());
            m.queue_waits.record(report.queue_wait.as_secs_f64());
            m.device_queues.record(report.device_queue_sec);
            let plan_sec = report.plan_time.as_secs_f64();
            if report.cache_hit {
                m.plan_hits.record(plan_sec);
            } else {
                m.plan_misses.record(plan_sec);
            }
            let build_sec = report.build_time.as_secs_f64();
            if report.cst_cache_hit {
                m.build_hits.record(build_sec);
            } else {
                m.build_misses.record(build_sec);
            }
            m.last_done = Some(now);
        }
        FinishOutcome::Failed => {
            m.failed += 1;
            m.last_done = Some(now);
        }
        // A shed session is not a failure: it was dropped by policy, and
        // the chaos accounting (`failed == 0` under recoverable schedules)
        // must not conflate the two.
        FinishOutcome::DeadlineMiss => {
            m.deadline_misses += 1;
            m.last_done = Some(now);
        }
    };
    fold(&mut inner.metrics.plock());
    fold(&mut tenant.metrics.plock());
    match &outcome {
        FinishOutcome::Completed(_) => inner.hooks.completed.inc(),
        FinishOutcome::Failed => inner.hooks.failed.inc(),
        FinishOutcome::DeadlineMiss => inner.hooks.deadline_misses.inc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast::Variant;
    use graph_core::generators::random_labelled_graph;
    use graph_core::Label;

    fn small_config() -> ServeConfig {
        ServeConfig {
            fast: {
                let mut f = FastConfig::test_small(Variant::Sep);
                f.shard_planner = ShardPlanner::Auto;
                f
            },
            devices: 2,
            extra_devices: Vec::new(),
            workers: 2,
            cache_capacity: 8,
            plan_cache_bytes: None,
            cst_cache_bytes: 16 << 20,
            max_in_flight: 4,
            ..ServeConfig::default()
        }
    }

    fn triangle() -> QueryGraph {
        QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(1)],
            &[(0, 1), (1, 2), (0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn serves_repeats_with_cache_hits_and_identical_counts() {
        let g = random_labelled_graph(60, 0.2, 2, 42);
        let service = FastService::new(g, small_config());
        let handles: Vec<SessionHandle> =
            (0..6).map(|_| service.submit(triangle())).collect();
        let reports: Vec<QueryReport> =
            handles.into_iter().map(|h| h.wait().unwrap()).collect();
        let first = reports[0].embeddings;
        assert!(reports.iter().all(|r| r.embeddings == first));
        assert!(reports.iter().all(|r| r.tenant == TenantId::DEFAULT));
        let final_report = service.shutdown();
        assert_eq!(final_report.completed, 6);
        assert_eq!(final_report.failed, 0);
        // Six submissions of one query: at least the non-concurrent
        // repeats hit (the first few may race the first insertion). With
        // tier 2 on, warm repeats are absorbed by the CST cache before
        // the plan cache is consulted, so the hits land there.
        let warm_hits = final_report.cache.hits + final_report.cst_cache.hits;
        assert!(
            warm_hits >= 1,
            "{:?} / {:?}",
            final_report.cache,
            final_report.cst_cache
        );
        assert!(final_report.cst_resident_bytes > 0, "artifact resident");
        assert_eq!(final_report.total_embeddings, 6 * first);
        assert!(final_report.qps > 0.0);
        // Single-tenant compatibility: the default tenant's slice carries
        // the whole service.
        assert_eq!(final_report.tenants.len(), 1);
        assert_eq!(final_report.tenants[0].completed, 6);
    }

    #[test]
    fn partition_events_sum_to_the_final_count() {
        let g = random_labelled_graph(60, 0.25, 2, 43);
        let service = FastService::new(g, small_config());
        let handle = service.submit(triangle());
        let mut streamed = 0u64;
        let mut updates = 0usize;
        let report = loop {
            match handle.next_event().expect("session alive") {
                SessionEvent::Partition(u) => {
                    assert!(u.device < 2);
                    assert_eq!(u.backend, BackendClass::Fpga);
                    streamed += u.embeddings;
                    updates += 1;
                }
                SessionEvent::Done(r) => break r,
                SessionEvent::Failed(e) => panic!("failed: {e}"),
            }
        };
        assert_eq!(streamed, report.embeddings);
        assert_eq!(updates, report.partitions);
        service.shutdown();
    }

    #[test]
    fn oversized_query_fails_cleanly() {
        // A path query longer than the kernel register budget.
        let n = fast::MAX_KERNEL_QUERY + 1;
        let labels: Vec<Label> = (0..n).map(|_| Label::new(0)).collect();
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        let q = QueryGraph::new(labels, &edges);
        let Ok(q) = q else {
            return; // query-size cap below the kernel cap: nothing to test
        };
        let g = random_labelled_graph(30, 0.2, 1, 44);
        let service = FastService::new(g, small_config());
        let err = service.submit(q).wait().unwrap_err();
        assert!(matches!(err, ServeError::Failed(_)), "{err}");
        let report = service.shutdown();
        assert_eq!(report.failed, 1);
        assert_eq!(report.completed, 0);
        assert_eq!(report.tenants[0].failed, 1);
    }

    #[test]
    fn empty_fleet_and_zero_quota_are_typed_errors() {
        let g = random_labelled_graph(20, 0.2, 1, 45);
        let mut config = small_config();
        config.devices = 0;
        let err = FastService::try_new(g.clone(), config).unwrap_err();
        assert_eq!(err, ServeError::NoDevices);

        let service = FastService::new(g.clone(), small_config());
        let err = service
            .add_tenant(
                g,
                TenantConfig {
                    quota: 0,
                    ..TenantConfig::default()
                },
            )
            .unwrap_err();
        assert_eq!(err, ServeError::ZeroQuota);
        service.shutdown();
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let g = random_labelled_graph(20, 0.2, 1, 45);
        let service = FastService::new(g, small_config());
        let ghost = TenantId::new(77);
        let err = service.submit_for(ghost, triangle()).unwrap_err();
        assert_eq!(err, ServeError::UnknownTenant(ghost));
        assert!(service.tenant_report(ghost).is_err());
        assert!(service.bump_epoch(ghost).is_err());
        service.shutdown();
    }

    #[test]
    fn second_tenant_serves_its_own_graph() {
        // Tenant B's graph has different labels: the same query yields a
        // different (zero) count, proving per-tenant graph routing.
        let ga = random_labelled_graph(60, 0.25, 2, 46);
        let gb = random_labelled_graph(40, 0.25, 1, 46); // single label: no (0,1,1) match
        let service = FastService::new(ga, small_config());
        let b = service
            .add_tenant(gb, TenantConfig { quota: 3, ..TenantConfig::default() })
            .unwrap();
        let ra = service.submit(triangle()).wait().unwrap();
        let rb = service.submit_for(b, triangle()).unwrap().wait().unwrap();
        assert_eq!(rb.tenant, b);
        assert!(ra.embeddings > 0, "tenant A should match");
        assert_eq!(rb.embeddings, 0, "tenant B's single-label graph cannot");
        let b_slice = service.tenant_report(b).unwrap();
        assert_eq!(b_slice.completed, 1);
        assert_eq!(b_slice.quota, 3);
        let report = service.shutdown();
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn epoch_bump_invalidates_cached_plans() {
        let g = random_labelled_graph(60, 0.2, 2, 47);
        let service = FastService::new(g, small_config());
        service.submit(triangle()).wait().unwrap();
        let warm = service.submit(triangle()).wait().unwrap();
        assert!(warm.cache_hit, "repeat should hit some tier");
        assert!(warm.cst_cache_hit, "sequential repeat should hit tier 2");
        assert_eq!(warm.build_time, Duration::ZERO, "tier-2 hits build nothing");
        assert_eq!(warm.topdown_entries, 0);
        assert_eq!(service.bump_epoch(TenantId::DEFAULT).unwrap(), 1);
        let r = service.submit(triangle()).wait().unwrap();
        assert!(!r.cache_hit, "epoch bump must invalidate both cache tiers");
        assert!(!r.cst_cache_hit);
        service.shutdown();
    }

    #[test]
    fn histogram_metrics_keep_uniform_ramp_percentiles() {
        // The streaming histograms replaced the strided sample reservoir:
        // a large uniform ramp must keep its percentiles within the
        // bucketing's documented relative error, at constant memory.
        let n = 200_000u64;
        let mut h = obs::Histogram::new();
        for i in 0..n {
            h.record(i as f64);
        }
        assert_eq!(h.count(), n);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let got = h.quantile(q);
            let want = q * (n - 1) as f64;
            assert!(
                (got - want).abs() <= 0.07 * want,
                "p{q}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn degenerate_reports_are_finite() {
        // Before any submission: no serving wall exists at all.
        let g = random_labelled_graph(20, 0.2, 1, 46);
        let service = FastService::new(g, small_config());
        let r = service.report();
        assert!(r.is_finite());
        assert_eq!(r.qps, 0.0);
        assert_eq!(r.completed, 0);
        service.shutdown();

        // A single instantaneous session: first submit and last completion
        // land on the same clock tick, so the wall is exactly zero with
        // `completed > 0` — QPS/imbalance must degrade to finite zeros,
        // never divide.
        let mut m = MetricsState::default();
        let now = Instant::now();
        m.first_submit = Some(now);
        m.last_done = Some(now);
        m.completed = 1;
        m.submitted = 1;
        m.latencies.record(0.0);
        m.queue_waits.record(0.0);
        m.device_queues.record(0.0);
        m.plan_misses.record(0.0);
        let pool = DevicePool::fpga_fleet(&small_config().fast, 1).unwrap();
        let view = PoolView {
            stats: pool.snapshot(),
            makespan_sec: pool.makespan_sec(),
            busy_sec: pool.busy_sec(),
            imbalance: pool.imbalance(),
        };
        let r = assemble_report(&m, CacheStats::default(), CacheStats::default(), 0, &view, 1, Vec::new());
        assert!(r.is_finite(), "zero-wall report must stay finite: {r:?}");
        assert_eq!(r.qps, 0.0, "zero wall yields zero QPS, not inf/NaN");
        assert_eq!(r.wall_sec, 0.0);
        assert_eq!(r.device_imbalance, 1.0, "idle pool is balanced by definition");
    }

    #[test]
    fn window_deltas_reconcile_with_lifetime_report() {
        let g = random_labelled_graph(60, 0.2, 2, 47);
        let service = FastService::new(g, small_config());
        for h in (0..3).map(|_| service.submit(triangle())).collect::<Vec<_>>() {
            h.wait().unwrap();
        }
        // `finish` folds metrics before the Done event is sent, so a
        // window taken after `wait` returns covers those sessions.
        let w0 = service.report_window();
        assert_eq!(w0.window.unwrap().seq, 0);
        assert!(w0.tenants.is_empty(), "windows slice time, not tenants");
        for h in (0..3).map(|_| service.submit(triangle())).collect::<Vec<_>>() {
            h.wait().unwrap();
        }
        let w1 = service.report_window();
        assert_eq!(w1.window.unwrap().seq, 1);
        assert!(w0.is_finite() && w1.is_finite());
        let life = service.shutdown();
        // Bit-exact reconciliation on the integer counters and histogram
        // bucket counts: the windows partition the lifetime exactly.
        assert_eq!(w0.submitted + w1.submitted, life.submitted);
        assert_eq!(w0.completed + w1.completed, life.completed);
        assert_eq!(w0.completed, 3);
        assert_eq!(w1.completed, 3);
        assert_eq!(
            w0.latency_hist.count() + w1.latency_hist.count(),
            life.latency_hist.count()
        );
        let mut merged = w0.latency_hist.clone();
        merged.merge(&w1.latency_hist);
        assert_eq!(
            merged.cumulative(),
            life.latency_hist.cumulative(),
            "window histograms must merge back to the lifetime buckets"
        );
        assert_eq!(
            w0.cache.hits + w1.cache.hits + w0.cst_cache.hits + w1.cst_cache.hits,
            life.cache.hits + life.cst_cache.hits
        );
    }

    #[test]
    fn try_submit_applies_backpressure_eventually_admits() {
        let g = random_labelled_graph(40, 0.2, 2, 45);
        let mut config = small_config();
        config.max_in_flight = 1;
        config.workers = 1;
        let service = FastService::new(g, config);
        let first = service.submit(triangle());
        // The admitted slot may free at any moment; what must hold is
        // that rejection is the typed `Saturated` error and a retry
        // loop eventually admits.
        let second = loop {
            match service.try_submit(triangle()) {
                Ok(h) => break h,
                Err(ServeError::Saturated) => std::thread::yield_now(),
                Err(e) => panic!("unexpected try_submit error: {e}"),
            }
        };
        let a = first.wait().unwrap().embeddings;
        let b = second.wait().unwrap().embeddings;
        assert_eq!(a, b);
        let report = service.shutdown();
        assert!(report.max_in_flight <= 1);
    }

    #[test]
    fn shutdown_sheds_queued_sessions_with_typed_error() {
        let g = random_labelled_graph(120, 0.25, 2, 57);
        let mut config = small_config();
        config.workers = 1;
        config.max_in_flight = 64;
        let service = FastService::new(g, config);
        let handles: Vec<_> = (0..24).map(|_| service.submit(triangle())).collect();
        // Shut down immediately: whatever was picked up completes,
        // whatever was still queued is shed with the typed error — no
        // handle ever observes a disconnected channel.
        let report = service.shutdown();
        let mut completed = 0usize;
        let mut shed = 0usize;
        for h in handles {
            match h.wait() {
                Ok(_) => completed += 1,
                Err(ServeError::ShuttingDown) => shed += 1,
                Err(e) => panic!("unexpected shutdown outcome: {e}"),
            }
        }
        assert_eq!(completed + shed, 24);
        assert_eq!(report.completed, completed as u64);
        assert_eq!(report.failed, shed as u64);
    }

    #[test]
    fn new_error_variants_display_and_compare() {
        assert_eq!(ServeError::DeadlineExceeded, ServeError::DeadlineExceeded);
        assert_eq!(ServeError::Degraded, ServeError::Degraded);
        assert_ne!(ServeError::DeadlineExceeded, ServeError::Degraded);
        let msg = ServeError::DeadlineExceeded.to_string();
        assert!(msg.contains("deadline"), "{msg}");
        let msg = ServeError::Degraded.to_string();
        assert!(msg.contains("degraded"), "{msg}");
        assert_eq!(ServeError::Saturated, ServeError::Saturated);
        assert_eq!(ServeError::ShuttingDown, ServeError::ShuttingDown);
        assert_ne!(ServeError::Saturated, ServeError::ShuttingDown);
        let msg = ServeError::Saturated.to_string();
        assert!(msg.contains("saturated"), "{msg}");
        let msg = ServeError::ShuttingDown.to_string();
        assert!(msg.contains("shutting down"), "{msg}");
        // They are std errors like the rest of the enum.
        let e: &dyn std::error::Error = &ServeError::Degraded;
        assert!(e.source().is_none());
    }

    #[test]
    fn plock_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "the mutex must actually be poisoned");
        assert_eq!(*m.plock(), 7, "plock recovers the guarded value");
    }

    #[test]
    fn zero_deadline_sheds_sessions_with_typed_error() {
        let g = random_labelled_graph(60, 0.2, 2, 50);
        let mut config = small_config();
        config.deadline = Some(Duration::ZERO);
        let service = FastService::new(g, config);
        for _ in 0..3 {
            let err = service.submit(triangle()).wait().unwrap_err();
            assert_eq!(err, ServeError::DeadlineExceeded);
        }
        let report = service.shutdown();
        assert_eq!(report.deadline_misses, 3);
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 0, "shed by policy, not broken");
        assert_eq!(report.tenants[0].deadline_misses, 3);
        assert!(report.is_finite());
    }

    #[test]
    fn tenant_deadline_overrides_service_default() {
        let g = random_labelled_graph(60, 0.2, 2, 51);
        let service = FastService::new(g.clone(), small_config());
        let strict = service
            .add_tenant(
                g,
                TenantConfig {
                    deadline: Some(Duration::ZERO),
                    ..TenantConfig::default()
                },
            )
            .unwrap();
        // Default tenant: no deadline, completes.
        assert!(service.submit(triangle()).wait().is_ok());
        // Strict tenant: shed.
        let err = service.submit_for(strict, triangle()).unwrap().wait().unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        let slice = service.tenant_report(strict).unwrap();
        assert_eq!(slice.deadline_misses, 1);
        assert_eq!(service.tenant_report(TenantId::DEFAULT).unwrap().deadline_misses, 0);
        service.shutdown();
    }

    #[test]
    fn always_failing_device_reroutes_with_exact_retry_accounting() {
        let g = random_labelled_graph(60, 0.25, 2, 52);
        let baseline = FastService::new(g.clone(), small_config());
        let want = baseline.submit(triangle()).wait().unwrap().embeddings;
        baseline.shutdown();

        // Device 0 fails every call; device 1 is clean. Dispatch prefers
        // index 0 on idle ties, so every partition's first attempt fails
        // and reroutes — and after QUARANTINE_THRESHOLD failures device 0
        // is quarantined outright.
        let mut config = small_config();
        config.devices = 0;
        config.workers = 1;
        config.extra_devices = vec![
            DeviceKind::Faulty {
                inner: Box::new(DeviceKind::Fpga(config.fast.spec.clone())),
                plan: fast::FaultPlan::transient(9, 1.0),
            },
            DeviceKind::Fpga(config.fast.spec.clone()),
        ];
        let service = FastService::new(g, config);
        let reports: Vec<QueryReport> = (0..6)
            .map(|_| service.submit(triangle()).wait().unwrap())
            .collect();
        assert!(reports.iter().all(|r| r.embeddings == want), "bit-identical");
        assert!(reports.iter().any(|r| r.retries > 0));
        assert!(reports.iter().any(|r| r.failovers > 0));
        let report = service.shutdown();
        assert_eq!(report.failed, 0);
        assert_eq!(report.completed, 6);
        let device_failures: u64 = report.devices.iter().map(|d| d.failures).sum();
        assert_eq!(
            report.retries, device_failures,
            "every device failure is retried exactly once"
        );
        assert!(report.quarantines >= 1, "an always-failing device quarantines");
        assert_eq!(report.devices[1].failures, 0, "the clean device never fails");
        assert!(report.is_finite());
    }

    #[test]
    fn dead_fleet_degrades_to_cpu_fallback() {
        let g = random_labelled_graph(60, 0.25, 2, 53);
        let baseline = FastService::new(g.clone(), small_config());
        let want = baseline.submit(triangle()).wait().unwrap().embeddings;
        baseline.shutdown();

        let mut config = small_config();
        config.devices = 0;
        config.workers = 1;
        config.extra_devices = vec![DeviceKind::Faulty {
            inner: Box::new(DeviceKind::Fpga(config.fast.spec.clone())),
            plan: fast::FaultPlan::dies_at(5, 0),
        }];
        let service = FastService::new(g, config);
        let reports: Vec<QueryReport> = (0..3)
            .map(|_| service.submit(triangle()).wait().unwrap())
            .collect();
        assert!(
            reports.iter().all(|r| r.embeddings == want),
            "the CPU fallback is bit-identical to the healthy fleet"
        );
        assert!(reports.iter().any(|r| r.degraded_sec > 0.0));
        let report = service.shutdown();
        assert_eq!(report.completed, 3);
        assert_eq!(report.failed, 0);
        assert!(report.degraded_sec > 0.0, "degraded-mode wall is accounted");
        assert_eq!(report.devices[0].health, crate::devices::HealthState::Evicted);
        assert_eq!(
            report.retries,
            report.devices.iter().map(|d| d.failures).sum::<u64>()
        );
        assert!(report.is_finite());
    }

    #[test]
    fn dead_fleet_without_fallback_sheds_with_degraded_error() {
        let g = random_labelled_graph(60, 0.25, 2, 54);
        let mut config = small_config();
        config.devices = 0;
        config.workers = 1;
        config.fault.cpu_fallback = false;
        config.extra_devices = vec![DeviceKind::Faulty {
            inner: Box::new(DeviceKind::Fpga(config.fast.spec.clone())),
            plan: fast::FaultPlan::dies_at(5, 0),
        }];
        let service = FastService::new(g, config);
        let err = service.submit(triangle()).wait().unwrap_err();
        assert_eq!(err, ServeError::Degraded, "typed shed, no hang");
        let report = service.shutdown();
        assert_eq!(report.failed, 1);
        assert_eq!(report.completed, 0);
        assert!(report.is_finite());
    }

    #[test]
    fn cross_check_outvotes_corruption_and_quarantines_the_liar() {
        let g = random_labelled_graph(60, 0.25, 2, 55);
        let baseline = FastService::new(g.clone(), small_config());
        let want = baseline.submit(triangle()).wait().unwrap().embeddings;
        baseline.shutdown();

        // Device 0 silently corrupts every output; devices 1 and 2 are
        // honest. Without cross-checking the corrupted counts would be
        // accepted as Ok.
        let mut config = small_config();
        config.devices = 0;
        config.workers = 1;
        config.fault.cross_check = true;
        config.extra_devices = vec![
            DeviceKind::Faulty {
                inner: Box::new(DeviceKind::Fpga(config.fast.spec.clone())),
                plan: fast::FaultPlan {
                    seed: 11,
                    corrupt_rate: 1.0,
                    ..fast::FaultPlan::default()
                },
            },
            DeviceKind::Fpga(config.fast.spec.clone()),
            DeviceKind::Fpga(config.fast.spec.clone()),
        ];
        let service = FastService::new(g, config);
        let reports: Vec<QueryReport> = (0..6)
            .map(|_| service.submit(triangle()).wait().unwrap())
            .collect();
        assert!(
            reports.iter().all(|r| r.embeddings == want),
            "every accepted count is the honest one"
        );
        assert!(reports.iter().any(|r| r.corruption_catches > 0));
        let report = service.shutdown();
        assert_eq!(report.failed, 0);
        assert!(report.corruption_catches > 0);
        assert!(report.devices[0].corruptions > 0, "the liar is charged");
        assert_eq!(report.devices[1].corruptions, 0);
        assert_eq!(report.devices[2].corruptions, 0);
        assert!(
            report.quarantines >= 1,
            "repeated corruption quarantines the device"
        );
        assert!(report.is_finite());
    }

    #[test]
    fn injected_panic_fails_its_own_session_only() {
        let g = random_labelled_graph(60, 0.25, 2, 56);
        let baseline = FastService::new(g.clone(), small_config());
        let want = baseline.submit(triangle()).wait().unwrap().embeddings;
        baseline.shutdown();

        // Device 1 panics on every call (an injected driver bug). Sessions
        // routed to it die mid-worker; the panic must stay contained —
        // their handles see Disconnected, everyone else keeps serving.
        let mut config = small_config();
        config.devices = 1;
        config.workers = 2;
        config.extra_devices = vec![DeviceKind::Faulty {
            inner: Box::new(DeviceKind::Fpga(config.fast.spec.clone())),
            plan: fast::FaultPlan {
                seed: 13,
                panic_after: Some(0),
                ..fast::FaultPlan::default()
            },
        }];
        let service = FastService::new(g, config);
        let handles: Vec<SessionHandle> =
            (0..8).map(|_| service.submit(triangle())).collect();
        let mut ok = 0u64;
        let mut dead = 0u64;
        for h in handles {
            match h.wait() {
                Ok(r) => {
                    assert_eq!(r.embeddings, want);
                    ok += 1;
                }
                Err(ServeError::Disconnected) => dead += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(ok + dead, 8);
        // The service still serves after the panics — the proof the
        // poison-tolerant locks and drop guards contain the blast radius.
        let after = service.submit(triangle()).wait().unwrap();
        assert_eq!(after.embeddings, want);
        let report = service.shutdown();
        assert_eq!(report.completed, ok + 1);
        assert_eq!(report.failed, dead);
        assert!(report.is_finite());
    }

    #[test]
    fn heterogeneous_pool_matches_fpga_only_counts() {
        let g = random_labelled_graph(60, 0.25, 2, 48);
        let baseline = FastService::new(g.clone(), small_config());
        let want = baseline.submit(triangle()).wait().unwrap().embeddings;
        baseline.shutdown();

        let mut config = small_config();
        config.devices = 1;
        config.extra_devices = vec![DeviceKind::Cpu { threads: 4 }];
        let service = FastService::new(g, config);
        let reports: Vec<QueryReport> = (0..4)
            .map(|_| service.submit(triangle()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.wait().unwrap())
            .collect();
        assert!(reports.iter().all(|r| r.embeddings == want));
        let report = service.shutdown();
        assert_eq!(report.devices.len(), 2);
        assert_eq!(report.devices[0].class, BackendClass::Fpga);
        assert_eq!(report.devices[1].class, BackendClass::Cpu);
        assert!(report.is_finite());
    }
}
