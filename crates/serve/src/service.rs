//! The [`FastService`]: admission, sessions, workers, and reporting.
//!
//! # Life of a query
//!
//! 1. [`FastService::submit`] blocks while `max_in_flight` sessions are
//!    already admitted (backpressure), then enqueues the submission and
//!    returns a [`SessionHandle`].
//! 2. A worker thread picks the submission up (queue wait ends), derives
//!    the BFS tree / matching order / kernel plan **once**, and derives the
//!    plan-cache key from the same tree — the cached-plan path never
//!    recomputes the query fingerprint or tree.
//! 3. On a cache hit the stored [`cst::ShardPlan`] rides into
//!    [`fast::prepare_partitions`] through [`FastConfig::shard_plan`] and
//!    the probe/boundary search is skipped; on a miss the freshly computed
//!    plan is inserted for the next repeat.
//! 4. Each partition streaming out of the prepare phase is booked onto the
//!    device with the shortest expected completion ([`DevicePool`]), executed on the
//!    emulated kernel, and its per-partition result count is sent to the
//!    session handle immediately — callers see results as kernels drain.
//! 5. The final [`QueryReport`] closes the session, service metrics are
//!    folded in, and the admission slot is released.
//!
//! Serving executes every partition on the device pool (the multi-FPGA
//! regime of Section VII-E); the single-run CPU-share scheduler
//! (FAST-SHARE's δ) is not booked here — the devices are the scaled
//! resource, and `run_fast` remains the one-shot path.

use crate::cache::{CacheStats, PlanCache};
use crate::devices::{DevicePool, DeviceStats};
use crate::metrics::ServeReport;
use cst::PlanKey;
use fast::{prepare_partitions, run_kernel, CollectMode, FastConfig, KernelPlan, ShardPlanner};
use graph_core::{path_based_order, select_root, BfsTree, Graph, QueryGraph, VertexId};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`FastService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-session FAST configuration (device spec, variant, CST options,
    /// planner). [`FastConfig::shard_plan`] is overwritten per session by
    /// the cache outcome.
    pub fast: FastConfig,
    /// Emulated FPGA devices partitions are multiplexed across.
    pub devices: usize,
    /// Host worker threads executing sessions.
    pub workers: usize,
    /// Plan-cache capacity (plans); 0 disables caching ("cold" serving).
    pub cache_capacity: usize,
    /// Bounded in-flight depth: [`FastService::submit`] blocks once this
    /// many sessions are admitted but not yet completed.
    pub max_in_flight: usize,
    /// Epoch of the loaded graph, folded into every cache key. Bump it
    /// when serving a different (or mutated) graph so stale plans can
    /// never hit.
    pub graph_epoch: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // Serving wants the planned pipeline: the auto planner is what the
        // plan cache amortises, and per-query shard counts are chosen once
        // then replayed from cache.
        let fast = FastConfig {
            shard_planner: ShardPlanner::Auto,
            ..FastConfig::default()
        };
        ServeConfig {
            fast,
            devices: 2,
            workers: 2,
            cache_capacity: 64,
            max_in_flight: 16,
            graph_epoch: 0,
        }
    }
}

/// One partition's result, streamed to the session as its kernel drains.
#[derive(Debug, Clone)]
pub struct PartitionUpdate {
    /// Position in the session's deterministic partition sequence.
    pub index: usize,
    /// Device the partition ran on.
    pub device: usize,
    /// Embeddings found in this partition.
    pub embeddings: u64,
    /// Modelled kernel cycles the partition cost.
    pub kernel_cycles: u64,
    /// Collected embeddings, when [`FastConfig::collect`] asks for them.
    pub collected: Vec<Vec<VertexId>>,
}

/// Final per-session report.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Session id (submission order).
    pub id: u64,
    /// Total embeddings across partitions.
    pub embeddings: u64,
    /// Partitions executed.
    pub partitions: usize,
    /// Whether the shard plan came from the cache.
    pub cache_hit: bool,
    /// Shard-planning wall time (~0 on a hit).
    pub plan_time: Duration,
    /// Shards the plan decomposed the root set into.
    pub pipeline_shards: usize,
    /// Shards built from the cached/fresh plan's probe — a warm-cache
    /// session seeds every shard and skips the global top-down scan.
    pub seeded_shards: usize,
    /// Wall time from worker pickup to completion (build + partition +
    /// inline emulated kernels).
    pub service_time: Duration,
    /// Wall time from submission to worker pickup.
    pub queue_wait: Duration,
    /// Modelled device queueing delay: the worst queue this session's
    /// partitions joined behind (outstanding booked work on the assigned
    /// device at admission, in modelled device seconds). The host wall
    /// alone hides this contention — the emulated kernels run inline — so
    /// it is folded into [`latency`](Self::latency).
    pub device_queue_sec: f64,
    /// Wall time from submission to completion **plus** the modelled
    /// device queueing delay ([`device_queue_sec`](Self::device_queue_sec))
    /// — the device-faithful latency the service percentiles aggregate.
    pub latency: Duration,
    /// Total modelled kernel cycles across the session's partitions.
    pub kernel_cycles: u64,
    /// Modelled device-seconds of those cycles.
    pub device_sec: f64,
}

/// Events a [`SessionHandle`] receives, in order: zero or more
/// [`SessionEvent::Partition`]s, then exactly one `Done` or `Failed`.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// One partition finished on a device.
    Partition(PartitionUpdate),
    /// The session completed; final report.
    Done(QueryReport),
    /// The session failed (message from the planning/validation layer).
    Failed(String),
}

/// Errors surfaced by [`SessionHandle::wait`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service reported a failure for this session.
    Failed(String),
    /// The service shut down before the session finished.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Failed(msg) => write!(f, "session failed: {msg}"),
            ServeError::Disconnected => write!(f, "service shut down mid-session"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Caller-side handle of one submitted query.
pub struct SessionHandle {
    id: u64,
    rx: mpsc::Receiver<SessionEvent>,
}

impl SessionHandle {
    /// Session id (submission order, 0-based).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks for the next event; `None` once the session is over (after
    /// `Done`/`Failed` was delivered) or the service shut down.
    pub fn next_event(&self) -> Option<SessionEvent> {
        self.rx.recv().ok()
    }

    /// Drains the session to completion, discarding partition updates.
    pub fn wait(self) -> Result<QueryReport, ServeError> {
        loop {
            match self.rx.recv() {
                Ok(SessionEvent::Done(report)) => return Ok(report),
                Ok(SessionEvent::Failed(msg)) => return Err(ServeError::Failed(msg)),
                Ok(SessionEvent::Partition(_)) => continue,
                Err(_) => return Err(ServeError::Disconnected),
            }
        }
    }
}

struct Submission {
    id: u64,
    query: QueryGraph,
    submitted: Instant,
    tx: mpsc::Sender<SessionEvent>,
}

#[derive(Default)]
struct Gate {
    in_flight: usize,
    max_seen: usize,
}

/// Cap on each per-session sample vector; memory stays bounded on a
/// service that runs forever.
const SAMPLE_CAP: usize = 1 << 16;

/// A capacity-bounded sample reservoir with a uniform per-vector stride.
/// When the vector fills it is thinned to every other retained sample and
/// the stride doubles — and, unlike naive decimation, **future** values are
/// then recorded at the same doubled stride, so every retained sample
/// represents the same number of sessions. (Thinning alone overweights
/// post-thinning traffic in p50/p99: old samples stand for 2ⁿ sessions
/// each while new ones keep arriving at full rate.)
#[derive(Debug, Clone)]
pub(crate) struct SampleVec {
    samples: Vec<f64>,
    /// Record every `stride`-th pushed value (a power of two).
    stride: u64,
    /// Values pushed so far, recorded or not.
    seen: u64,
}

impl Default for SampleVec {
    fn default() -> Self {
        SampleVec {
            samples: Vec::new(),
            stride: 1,
            seen: 0,
        }
    }
}

impl SampleVec {
    pub(crate) fn push(&mut self, value: f64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.samples.len() >= SAMPLE_CAP {
                // Retained sample `i` was pushed at position `i · stride`,
                // so keeping the even positions leaves exactly the pushes
                // divisible by the doubled stride.
                let mut keep = 0usize;
                for i in (0..self.samples.len()).step_by(2) {
                    self.samples[keep] = self.samples[i];
                    keep += 1;
                }
                self.samples.truncate(keep);
                self.stride *= 2;
            }
            if self.seen.is_multiple_of(self.stride) {
                self.samples.push(value);
            }
        }
        self.seen += 1;
    }

    pub(crate) fn as_slice(&self) -> &[f64] {
        &self.samples
    }
}

#[derive(Default, Clone)]
struct MetricsState {
    submitted: u64,
    completed: u64,
    failed: u64,
    total_embeddings: u64,
    latencies: SampleVec,
    queue_waits: SampleVec,
    device_queues: SampleVec,
    plan_hits: SampleVec,
    plan_misses: SampleVec,
    first_submit: Option<Instant>,
    last_done: Option<Instant>,
}

struct Inner {
    graph: Arc<Graph>,
    config: ServeConfig,
    next_id: AtomicU64,
    cache: Mutex<PlanCache>,
    /// Keys whose plan is being computed right now (single-flight): a
    /// concurrent identical cold query waits for the owner's probe instead
    /// of re-running it.
    pending_plans: Mutex<HashSet<PlanKey>>,
    pending_cond: Condvar,
    devices: Mutex<DevicePool>,
    gate: Mutex<Gate>,
    gate_cond: Condvar,
    metrics: Mutex<MetricsState>,
}

/// A running query-serving service over one loaded data graph.
pub struct FastService {
    inner: Arc<Inner>,
    // Behind a Mutex so `&FastService` is shareable across submitter
    // threads regardless of `mpsc::Sender`'s `Sync`-ness; taken out on
    // shutdown to hang the workers' `recv` up.
    tx: Mutex<Option<mpsc::Sender<Submission>>>,
    workers: Vec<JoinHandle<()>>,
}

impl FastService {
    /// Loads `graph` into a service and spawns its worker pool. Accepts a
    /// plain [`Graph`] or a shared [`Arc<Graph>`] — benchmarks spinning up
    /// several services over one dataset should share the `Arc` instead of
    /// deep-cloning the graph per service.
    pub fn new(graph: impl Into<Arc<Graph>>, config: ServeConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.max_in_flight >= 1, "need in-flight depth >= 1");
        let inner = Arc::new(Inner {
            cache: Mutex::new(PlanCache::new(config.cache_capacity)),
            pending_plans: Mutex::new(HashSet::new()),
            pending_cond: Condvar::new(),
            devices: Mutex::new(DevicePool::new(config.devices)),
            gate: Mutex::new(Gate::default()),
            gate_cond: Condvar::new(),
            metrics: Mutex::new(MetricsState::default()),
            next_id: AtomicU64::new(0),
            graph: graph.into(),
            config,
        });
        let (tx, rx) = mpsc::channel::<Submission>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..inner.config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only for the dequeue itself.
                    let sub = match rx.lock().expect("submission queue").recv() {
                        Ok(sub) => sub,
                        Err(_) => return,
                    };
                    // A panicking session must not kill the worker: its
                    // admission slot is released by SlotGuard during the
                    // unwind, its handle sees Disconnected (the event
                    // sender drops), and the failure is counted here.
                    let outcome = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| serve_one(&inner, sub)),
                    );
                    if outcome.is_err() {
                        if let Ok(mut m) = inner.metrics.lock() {
                            m.failed += 1;
                            m.last_done = Some(Instant::now());
                        }
                    }
                })
            })
            .collect();
        FastService {
            inner,
            tx: Mutex::new(Some(tx)),
            workers,
        }
    }

    /// The loaded data graph.
    pub fn graph(&self) -> &Graph {
        self.inner.graph.as_ref()
    }

    /// Submits a query, **blocking while the service is at its in-flight
    /// bound** (backpressure — a closed-loop client slows down instead of
    /// growing an unbounded queue).
    pub fn submit(&self, query: QueryGraph) -> SessionHandle {
        {
            let gate = self.inner.gate.lock().expect("gate");
            let mut gate = self
                .inner
                .gate_cond
                .wait_while(gate, |g| g.in_flight >= self.inner.config.max_in_flight)
                .expect("gate");
            gate.in_flight += 1;
            gate.max_seen = gate.max_seen.max(gate.in_flight);
        }
        self.enqueue(query)
    }

    /// Non-blocking admission: returns the query back when the service is
    /// saturated.
    pub fn try_submit(&self, query: QueryGraph) -> Result<SessionHandle, QueryGraph> {
        {
            let mut gate = self.inner.gate.lock().expect("gate");
            if gate.in_flight >= self.inner.config.max_in_flight {
                return Err(query);
            }
            gate.in_flight += 1;
            gate.max_seen = gate.max_seen.max(gate.in_flight);
        }
        Ok(self.enqueue(query))
    }

    fn enqueue(&self, query: QueryGraph) -> SessionHandle {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        {
            let mut m = self.inner.metrics.lock().expect("metrics");
            m.submitted += 1;
            m.first_submit.get_or_insert(now);
        }
        let submission = Submission {
            id,
            query,
            submitted: now,
            tx,
        };
        self.tx
            .lock()
            .expect("sender")
            .as_ref()
            .expect("service is running")
            .send(submission)
            .expect("workers outlive the sender");
        SessionHandle { id, rx }
    }

    /// A point-in-time service report (callable while serving). Each lock
    /// is taken briefly in turn to snapshot its state; the sorting and
    /// aggregation run with no lock held, so a report never stalls
    /// admission or dispatch.
    pub fn report(&self) -> ServeReport {
        let metrics = self.inner.metrics.lock().expect("metrics").clone();
        let cache = self.inner.cache.lock().expect("cache").stats();
        let devices = self.inner.devices.lock().expect("devices").clone();
        let max_seen = self.inner.gate.lock().expect("gate").max_seen;
        assemble_report(&self.inner.config, &metrics, cache, &devices, max_seen)
    }

    /// Stops accepting submissions, drains in-flight sessions, joins the
    /// workers, and returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        *self.tx.lock().expect("sender") = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.report()
    }
}

impl Drop for FastService {
    fn drop(&mut self) {
        // `shutdown` already joined; otherwise detach cleanly by hanging
        // up the queue so workers exit after draining it.
        *self.tx.lock().expect("sender") = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn assemble_report(
    config: &ServeConfig,
    m: &MetricsState,
    cache: CacheStats,
    devices: &DevicePool,
    max_in_flight: usize,
) -> ServeReport {
    let wall_sec = match (m.first_submit, m.last_done) {
        (Some(a), Some(b)) => b.saturating_duration_since(a).as_secs_f64(),
        _ => 0.0,
    };
    let device_stats: Vec<DeviceStats> = devices.snapshot();
    let mut report = ServeReport {
        submitted: m.submitted,
        completed: m.completed,
        failed: m.failed,
        total_embeddings: m.total_embeddings,
        cache,
        // Degenerate walls must never surface NaN/inf: a report taken
        // before any completion has no wall at all, and a single session
        // can complete within one clock tick (`wall_sec == 0.0` with
        // `completed > 0`). Both collapse to QPS 0 rather than dividing.
        qps: if wall_sec > 0.0 {
            m.completed as f64 / wall_sec
        } else {
            0.0
        },
        wall_sec,
        device_makespan_sec: devices.makespan_sec(&config.fast.spec),
        device_busy_sec: config.fast.spec.cycles_to_sec(devices.total_cycles()),
        device_imbalance: devices.imbalance(),
        devices: device_stats,
        max_in_flight,
        ..ServeReport::default()
    };
    report.aggregate(
        m.latencies.as_slice(),
        m.queue_waits.as_slice(),
        m.device_queues.as_slice(),
        m.plan_hits.as_slice(),
        m.plan_misses.as_slice(),
    );
    debug_assert!(report.is_finite(), "report must never surface NaN/inf");
    report
}

/// Executes one session on the calling worker thread.
/// Removes a key from the single-flight set on drop — including on a
/// panicking unwind, so a wedged owner can never block waiters forever.
struct FlightGuard<'a> {
    inner: &'a Inner,
    key: PlanKey,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut pending) = self.inner.pending_plans.lock() {
            pending.remove(&self.key);
        }
        self.inner.pending_cond.notify_all();
    }
}

/// Releases a session's admission slot on drop — the only release path,
/// so a panicking session can never leak its slot and wedge `submit`.
struct SlotGuard<'a> {
    inner: &'a Inner,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut gate) = self.inner.gate.lock() {
            gate.in_flight = gate.in_flight.saturating_sub(1);
        }
        self.inner.gate_cond.notify_all();
    }
}

fn serve_one(inner: &Inner, sub: Submission) {
    // Admission slot released when this frame unwinds, panicking or not.
    let _slot = SlotGuard { inner };
    let picked = Instant::now();
    let queue_wait = picked.duration_since(sub.submitted);
    let q = &sub.query;
    let g: &Graph = &inner.graph;

    // Derive tree/order/kernel-plan once; the cache key reuses this tree.
    let root = select_root(q, g);
    let tree = BfsTree::new(q, root);
    let order = path_based_order(q, &tree, g);
    let kernel_plan = match KernelPlan::new(q, &order, &tree) {
        Ok(p) => p,
        Err(e) => {
            let _ = sub.tx.send(SessionEvent::Failed(e.to_string()));
            finish(inner, FinishOutcome::Failed);
            return;
        }
    };

    // Plan cache: hit → the stored plan skips the probe inside
    // `prepare_partitions`; miss → the plan is computed *here* (the same
    // `plan_pipeline_shards` the pipeline would call) and published to the
    // cache immediately, before the session's build/execute starts.
    // Misses are single-flight: a concurrent identical query waits only
    // for the owner's planning (not its whole session), then reads the
    // freshly inserted plan as a hit.
    let mut config = inner.config.fast.clone();
    let pipe_opts = config.pipeline_options(q.vertex_count());
    let key = PlanKey::derive(q, &tree, &pipe_opts, inner.config.graph_epoch);
    let (cached, flight) = if inner.config.cache_capacity > 0 {
        let mut pending = inner.pending_plans.lock().expect("pending plans");
        while pending.contains(&key) {
            pending = inner.pending_cond.wait(pending).expect("pending plans");
        }
        match inner.cache.lock().expect("cache").get(&key) {
            Some(plan) => (Some(plan), None),
            None => {
                pending.insert(key);
                (None, Some(FlightGuard { inner, key }))
            }
        }
    } else {
        (inner.cache.lock().expect("cache").get(&key), None)
    };
    let cache_hit = cached.is_some();
    let mut measured_plan_time = Duration::ZERO;
    let plan = match cached {
        Some(plan) => plan,
        None => {
            let t0 = Instant::now();
            let roots = cst::root_candidates(q, g, &tree, pipe_opts.cst);
            let plan = Arc::new(cst::plan_pipeline_shards(q, g, &tree, &pipe_opts, &roots));
            measured_plan_time = t0.elapsed();
            if inner.config.cache_capacity > 0 {
                inner
                    .cache
                    .lock()
                    .expect("cache")
                    .insert(key, Arc::clone(&plan));
            }
            // Release the single-flight claim now that the plan is
            // published: waiters wake straight into a hit while this
            // session goes on to build and execute.
            drop(flight);
            plan
        }
    };
    config.shard_plan = Some(plan);

    let model = config.cycle_model();
    let mut embeddings = 0u64;
    let mut partitions = 0usize;
    let mut kernel_cycles = 0u64;
    let mut device_queue_sec = 0.0f64;
    let prep = prepare_partitions(q, g, &config, &tree, &order, &mut |job| {
        let (device, queued_cycles) =
            inner.devices.lock().expect("devices").admit(job.workload);
        // Partitions on different devices drain in parallel; the session's
        // completion is gated by the worst queue any of them joined.
        device_queue_sec = device_queue_sec.max(config.spec.cycles_to_sec(queued_cycles));
        let out = run_kernel(&job.cst, &kernel_plan, config.spec.no, config.collect);
        let cycles = config.variant.kernel_cycles(&model, out.counts);
        inner
            .devices
            .lock()
            .expect("devices")
            .complete(device, job.workload, cycles);
        embeddings += out.embeddings;
        partitions += 1;
        kernel_cycles += cycles;
        let collected = if matches!(config.collect, CollectMode::Collect(_)) {
            out.collected
        } else {
            Vec::new()
        };
        let _ = sub.tx.send(SessionEvent::Partition(PartitionUpdate {
            index: job.index,
            device,
            embeddings: out.embeddings,
            kernel_cycles: cycles,
            collected,
        }));
    });
    let now = Instant::now();
    let report = QueryReport {
        id: sub.id,
        embeddings,
        partitions,
        cache_hit,
        // ~0 on a hit (and on the replay inside `prepare_partitions`);
        // the explicit probe/boundary-search wall on a miss.
        plan_time: measured_plan_time + prep.plan_time,
        pipeline_shards: prep.pipeline_shards,
        seeded_shards: prep.seeded_shards,
        service_time: now.duration_since(picked),
        queue_wait,
        device_queue_sec,
        latency: now.duration_since(sub.submitted) + Duration::from_secs_f64(device_queue_sec),
        kernel_cycles,
        device_sec: config.spec.cycles_to_sec(kernel_cycles),
    };
    let _ = sub.tx.send(SessionEvent::Done(report.clone()));
    finish(inner, FinishOutcome::Completed(report));
}

enum FinishOutcome {
    Completed(QueryReport),
    Failed,
}

/// Folds a session's outcome into the service metrics. The admission slot
/// is released by the session's `SlotGuard`, not here.
fn finish(inner: &Inner, outcome: FinishOutcome) {
    let mut m = inner.metrics.lock().expect("metrics");
    match outcome {
        FinishOutcome::Completed(report) => {
            m.completed += 1;
            m.total_embeddings += report.embeddings;
            m.latencies.push(report.latency.as_secs_f64());
            m.queue_waits.push(report.queue_wait.as_secs_f64());
            m.device_queues.push(report.device_queue_sec);
            let plan_sec = report.plan_time.as_secs_f64();
            if report.cache_hit {
                m.plan_hits.push(plan_sec);
            } else {
                m.plan_misses.push(plan_sec);
            }
            m.last_done = Some(Instant::now());
        }
        FinishOutcome::Failed => {
            m.failed += 1;
            m.last_done = Some(Instant::now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast::Variant;
    use graph_core::generators::random_labelled_graph;
    use graph_core::Label;

    fn small_config() -> ServeConfig {
        ServeConfig {
            fast: {
                let mut f = FastConfig::test_small(Variant::Sep);
                f.shard_planner = ShardPlanner::Auto;
                f
            },
            devices: 2,
            workers: 2,
            cache_capacity: 8,
            max_in_flight: 4,
            graph_epoch: 0,
        }
    }

    fn triangle() -> QueryGraph {
        QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(1)],
            &[(0, 1), (1, 2), (0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn serves_repeats_with_cache_hits_and_identical_counts() {
        let g = random_labelled_graph(60, 0.2, 2, 42);
        let service = FastService::new(g, small_config());
        let handles: Vec<SessionHandle> =
            (0..6).map(|_| service.submit(triangle())).collect();
        let reports: Vec<QueryReport> =
            handles.into_iter().map(|h| h.wait().unwrap()).collect();
        let first = reports[0].embeddings;
        assert!(reports.iter().all(|r| r.embeddings == first));
        let final_report = service.shutdown();
        assert_eq!(final_report.completed, 6);
        assert_eq!(final_report.failed, 0);
        // Six submissions of one query: at least the non-concurrent
        // repeats hit (the first few may race the first insertion).
        assert!(final_report.cache.hits >= 1, "{:?}", final_report.cache);
        assert_eq!(final_report.total_embeddings, 6 * first);
        assert!(final_report.qps > 0.0);
    }

    #[test]
    fn partition_events_sum_to_the_final_count() {
        let g = random_labelled_graph(60, 0.25, 2, 43);
        let service = FastService::new(g, small_config());
        let handle = service.submit(triangle());
        let mut streamed = 0u64;
        let mut updates = 0usize;
        let report = loop {
            match handle.next_event().expect("session alive") {
                SessionEvent::Partition(u) => {
                    assert!(u.device < 2);
                    streamed += u.embeddings;
                    updates += 1;
                }
                SessionEvent::Done(r) => break r,
                SessionEvent::Failed(e) => panic!("failed: {e}"),
            }
        };
        assert_eq!(streamed, report.embeddings);
        assert_eq!(updates, report.partitions);
        service.shutdown();
    }

    #[test]
    fn oversized_query_fails_cleanly() {
        // A path query longer than the kernel register budget.
        let n = fast::MAX_KERNEL_QUERY + 1;
        let labels: Vec<Label> = (0..n).map(|_| Label::new(0)).collect();
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        let q = QueryGraph::new(labels, &edges);
        let Ok(q) = q else {
            return; // query-size cap below the kernel cap: nothing to test
        };
        let g = random_labelled_graph(30, 0.2, 1, 44);
        let service = FastService::new(g, small_config());
        let err = service.submit(q).wait().unwrap_err();
        assert!(matches!(err, ServeError::Failed(_)), "{err}");
        let report = service.shutdown();
        assert_eq!(report.failed, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn sample_stride_keeps_uniform_ramp_percentiles() {
        use crate::metrics::percentile;
        let n = (SAMPLE_CAP * 3) as u64; // forces two thinnings
        let mut v = SampleVec::default();
        for i in 0..n {
            v.push(i as f64);
        }
        assert!(v.as_slice().len() <= SAMPLE_CAP, "cap respected");
        assert!(v.stride >= 4, "two thinnings double the stride twice");
        // Every retained sample stands for `stride` pushes — a uniform
        // 0..n ramp keeps its percentiles (to within a stride or two).
        // Naive decimation would keep every post-thinning push at full
        // rate and drag p50 far into the tail.
        let tol = 2.0 * v.stride as f64;
        for q in [0.1, 0.5, 0.9, 0.99] {
            let got = percentile(v.as_slice(), q);
            let want = q * (n - 1) as f64;
            assert!(
                (got - want).abs() <= tol,
                "p{q}: got {got}, want {want} (±{tol})"
            );
        }
    }

    #[test]
    fn degenerate_reports_are_finite() {
        // Before any submission: no serving wall exists at all.
        let g = random_labelled_graph(20, 0.2, 1, 46);
        let service = FastService::new(g, small_config());
        let r = service.report();
        assert!(r.is_finite());
        assert_eq!(r.qps, 0.0);
        assert_eq!(r.completed, 0);
        service.shutdown();

        // A single instantaneous session: first submit and last completion
        // land on the same clock tick, so the wall is exactly zero with
        // `completed > 0` — QPS/imbalance must degrade to finite zeros,
        // never divide.
        let mut m = MetricsState::default();
        let now = Instant::now();
        m.first_submit = Some(now);
        m.last_done = Some(now);
        m.completed = 1;
        m.submitted = 1;
        m.latencies.push(0.0);
        m.queue_waits.push(0.0);
        m.device_queues.push(0.0);
        m.plan_misses.push(0.0);
        let r = assemble_report(
            &small_config(),
            &m,
            CacheStats::default(),
            &DevicePool::new(1),
            1,
        );
        assert!(r.is_finite(), "zero-wall report must stay finite: {r:?}");
        assert_eq!(r.qps, 0.0, "zero wall yields zero QPS, not inf/NaN");
        assert_eq!(r.wall_sec, 0.0);
        assert_eq!(r.device_imbalance, 1.0, "idle pool is balanced by definition");
    }

    #[test]
    fn try_submit_applies_backpressure_eventually_admits() {
        let g = random_labelled_graph(40, 0.2, 2, 45);
        let mut config = small_config();
        config.max_in_flight = 1;
        config.workers = 1;
        let service = FastService::new(g, config);
        let first = service.submit(triangle());
        // The slot may free at any moment; what must hold is that a
        // rejection returns the query intact and a retry loop succeeds.
        let mut query = triangle();
        let second = loop {
            match service.try_submit(query) {
                Ok(h) => break h,
                Err(back) => {
                    query = back;
                    std::thread::yield_now();
                }
            }
        };
        let a = first.wait().unwrap().embeddings;
        let b = second.wait().unwrap().embeddings;
        assert_eq!(a, b);
        let report = service.shutdown();
        assert!(report.max_in_flight <= 1);
    }
}
