//! The LRU plan cache fronting `plan_pipeline_shards`.
//!
//! Keys are [`cst::PlanKey`]s (derived in `cst::cache`, next to the planner
//! whose inputs they fingerprint); values are [`Arc<ShardPlan>`]s shared
//! with the sessions executing them. Capacity-bounded with
//! least-recently-*used* eviction — a hit refreshes the entry — and
//! hit/miss/eviction counters surfaced through [`CacheStats`] into the
//! service report. Capacity 0 disables the cache entirely (every lookup
//! misses, nothing is stored): the "cold" configuration of the serving
//! benchmark.

use cst::{PlanKey, ShardPlan};
use std::collections::HashMap;
use std::sync::Arc;

/// Hit/miss accounting of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (including all lookups at capacity 0).
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds another cache's counters into this one — how the service
    /// report aggregates the per-tenant cache partitions.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }
}

struct Entry {
    plan: Arc<ShardPlan>,
    last_used: u64,
}

/// A capacity-bounded LRU map `PlanKey → Arc<ShardPlan>`.
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<PlanKey, Entry>,
    stats: CacheStats,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts the outcome.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<ShardPlan>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `plan` under `key`, evicting the least-recently-used entry if
    /// the cache is full. A no-op at capacity 0.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<ShardPlan>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // O(n) victim scan: serving caches hold tens of plans, not
            // millions — a linked-list LRU would be pure overhead here.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        let tick = self.tick;
        self.entries.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
        self.stats.insertions += 1;
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: u64) -> PlanKey {
        PlanKey {
            query: q,
            graph_epoch: crate::tenant::INITIAL_GRAPH_EPOCH,
            options: 0,
        }
    }

    fn plan(shards: usize) -> Arc<ShardPlan> {
        Arc::new(ShardPlan::contiguous(shards * 4, shards))
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = PlanCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), plan(2));
        let hit = c.get(&key(1)).expect("cached");
        assert_eq!(hit.shard_count(), 2);
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, insertions: 1, evictions: 0 });
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert(key(1), plan(1));
        c.insert(key(2), plan(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(3), plan(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_without_evicting() {
        let mut c = PlanCache::new(1);
        c.insert(key(1), plan(1));
        c.insert(key(1), plan(3));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(1)).unwrap().shard_count(), 3);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = PlanCache::new(0);
        c.insert(key(1), plan(1));
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().insertions, 0);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
