//! The serving layer's two cache tiers, unified on one size-aware LRU.
//!
//! [`SizedCache`] is the shared machinery: a *weight*-budgeted LRU map —
//! every entry carries a caller-supplied weight, eviction removes
//! least-recently-used entries until the resident weight fits the budget,
//! and an entry heavier than the whole budget is **rejected** without
//! disturbing the working set. Entry-count capacity is the degenerate case
//! (every weight 1), so both tiers and both configuration styles share one
//! implementation:
//!
//! * [`PlanCache`] (tier 1): [`cst::PlanKey`] → [`Arc<ShardPlan>`] — the
//!   probe/boundary-search result. Configurable as an entry count (the
//!   original interface, [`PlanCache::new`]) or a byte budget weighing
//!   `ShardPlan::approx_bytes` ([`CacheBudget::Bytes`]): probe-carrying
//!   plans dominate memory, which an entry-count LRU can't see.
//! * [`CstCache`] (tier 2): [`cst::PlanKey`] → [`Arc<fast::PreparedCsts>`]
//!   — the refined shard CSTs *and* their partition decomposition, weighed
//!   by `PreparedCsts::payload_bytes`. A hit makes a warm serve pure
//!   dispatch + kernel: no top-down, no refinement, no materialisation, no
//!   partitioning.
//!
//! Both tiers are partitioned per tenant (`tenant::TenantState`), counted
//! by [`CacheStats`], and disabled by a zero budget (every lookup misses,
//! nothing is stored) — the "cold" arms of the serving benchmarks.

use cst::{PlanKey, ShardPlan};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Hit/miss accounting of a cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (including all lookups at budget 0).
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Insertions refused because the entry alone exceeds the whole budget
    /// (the working set is left untouched; evicting everything for an
    /// entry that still cannot fit would be pure loss).
    pub rejected: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds another cache's counters into this one — how the service
    /// report aggregates the per-tenant cache partitions.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.rejected += other.rejected;
    }

    /// Counters accumulated since `base` was captured — the rolling-window
    /// delta. Every field is monotone, so the subtraction is exact;
    /// `saturating_sub` guards against a mismatched base.
    pub fn delta(&self, base: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
            insertions: self.insertions.saturating_sub(base.insertions),
            evictions: self.evictions.saturating_sub(base.evictions),
            rejected: self.rejected.saturating_sub(base.rejected),
        }
    }
}

struct Entry<V> {
    value: V,
    weight: usize,
    last_used: u64,
}

/// A weight-budgeted LRU map: resident weight never exceeds `budget`.
///
/// The caller supplies each entry's weight at insertion (bytes for the
/// byte-budgeted tiers, 1 for entry-count capacity); a hit refreshes
/// recency. Budget 0 disables the cache. Victim selection is an O(n) scan —
/// serving caches hold tens of entries, not millions, so a linked-list LRU
/// would be pure overhead.
pub struct SizedCache<K, V> {
    budget: usize,
    used: usize,
    tick: u64,
    entries: HashMap<K, Entry<V>>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Copy, V: Clone> SizedCache<K, V> {
    /// Creates a cache whose resident weight is bounded by `budget`
    /// (0 = disabled).
    pub fn new(budget: usize) -> Self {
        SizedCache {
            budget,
            used: 0,
            tick: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts the outcome.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `key` with the given eviction `weight`,
    /// evicting least-recently-used entries until it fits. An entry heavier
    /// than the whole budget is rejected — counted, working set untouched.
    /// A no-op at budget 0.
    pub fn insert(&mut self, key: K, value: V, weight: usize) {
        if self.budget == 0 {
            return;
        }
        if weight > self.budget {
            self.stats.rejected += 1;
            return;
        }
        self.tick += 1;
        // Replacing an entry releases its weight before fit is judged.
        if let Some(old) = self.entries.remove(&key) {
            self.used -= old.weight;
        }
        while self.used + weight > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("over budget implies a resident entry");
            let evicted = self.entries.remove(&victim).expect("victim resident");
            self.used -= evicted.weight;
            self.stats.evictions += 1;
        }
        let tick = self.tick;
        self.entries.insert(
            key,
            Entry {
                value,
                weight,
                last_used: tick,
            },
        );
        self.used += weight;
        self.stats.insertions += 1;
    }

    /// Drops every entry (epoch invalidation) — not counted as eviction:
    /// invalidation is correctness, not cache pressure.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident weight (bytes for byte-budgeted tiers).
    pub fn used(&self) -> usize {
        self.used
    }

    /// Configured weight budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// How a [`PlanCache`]'s capacity is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheBudget {
    /// At most this many entries (the original interface; weight 1 each).
    Entries(usize),
    /// At most this many resident bytes, weighing `ShardPlan::approx_bytes`.
    Bytes(usize),
}

/// Tier 1: a budgeted LRU map `PlanKey → Arc<ShardPlan>`.
pub struct PlanCache {
    inner: SizedCache<PlanKey, Arc<ShardPlan>>,
    by_bytes: bool,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        PlanCache::with_budget(CacheBudget::Entries(capacity))
    }

    /// Creates a cache bounded by `budget` (entries or bytes; 0 = disabled).
    pub fn with_budget(budget: CacheBudget) -> Self {
        let (limit, by_bytes) = match budget {
            CacheBudget::Entries(n) => (n, false),
            CacheBudget::Bytes(b) => (b, true),
        };
        PlanCache {
            inner: SizedCache::new(limit),
            by_bytes,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts the outcome.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<ShardPlan>> {
        self.inner.get(key)
    }

    /// Stores `plan` under `key`, evicting LRU entries if over budget.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<ShardPlan>) {
        let weight = if self.by_bytes {
            plan.approx_bytes().max(1)
        } else {
            1
        };
        self.inner.insert(key, plan, weight);
    }

    /// Drops every entry (epoch invalidation).
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Configured budget (entries or bytes, per construction).
    pub fn capacity(&self) -> usize {
        self.inner.budget()
    }

    /// Resident weight (entry count or approximate bytes).
    pub fn used(&self) -> usize {
        self.inner.used()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

/// Tier 2: a byte-budgeted LRU map `PlanKey → Arc<fast::PreparedCsts>` —
/// refined shard CSTs plus partition decomposition, weighed by
/// `PreparedCsts::payload_bytes`. A hit skips *all* build work; resident
/// bytes never exceed the budget (`tests/prop_cst_cache.rs` proves the
/// invariant over randomized sequences).
pub struct CstCache {
    inner: SizedCache<PlanKey, Arc<fast::PreparedCsts>>,
}

impl CstCache {
    /// Creates a cache bounded by `budget_bytes` resident payload bytes
    /// (0 = tier 2 disabled).
    pub fn new(budget_bytes: usize) -> Self {
        CstCache {
            inner: SizedCache::new(budget_bytes),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts the outcome.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<fast::PreparedCsts>> {
        self.inner.get(key)
    }

    /// Stores `artifact` under `key`, weighed by its payload bytes.
    pub fn insert(&mut self, key: PlanKey, artifact: Arc<fast::PreparedCsts>) {
        let weight = artifact.payload_bytes().max(1);
        self.inner.insert(key, artifact, weight);
    }

    /// Drops every entry — `bump_epoch`'s tier-2 invalidation. (Tier 1
    /// needs no clearing: the epoch is *inside* the `PlanKey`, so stale
    /// plans age out; tier-2 payloads are megabytes, so stale artifacts
    /// are dropped eagerly instead of squatting the byte budget.)
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.inner.budget()
    }

    /// Resident payload bytes.
    pub fn resident_bytes(&self) -> usize {
        self.inner.used()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: u64) -> PlanKey {
        PlanKey {
            query: q,
            graph_epoch: crate::tenant::INITIAL_GRAPH_EPOCH,
            options: 0,
        }
    }

    fn plan(shards: usize) -> Arc<ShardPlan> {
        Arc::new(ShardPlan::contiguous(shards * 4, shards))
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = PlanCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), plan(2));
        let hit = c.get(&key(1)).expect("cached");
        assert_eq!(hit.shard_count(), 2);
        assert_eq!(
            c.stats(),
            CacheStats { hits: 1, misses: 1, insertions: 1, evictions: 0, rejected: 0 }
        );
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert(key(1), plan(1));
        c.insert(key(2), plan(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(3), plan(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_without_evicting() {
        let mut c = PlanCache::new(1);
        c.insert(key(1), plan(1));
        c.insert(key(1), plan(3));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&key(1)).unwrap().shard_count(), 3);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = PlanCache::new(0);
        c.insert(key(1), plan(1));
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().insertions, 0);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn byte_budget_weighs_plans_and_tracks_residency() {
        // Two probe-free plans fit a budget sized for two; the third evicts.
        let per_plan = plan(2).approx_bytes();
        assert!(per_plan > 0);
        let mut c = PlanCache::with_budget(CacheBudget::Bytes(per_plan * 2));
        c.insert(key(1), plan(2));
        c.insert(key(2), plan(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.used(), per_plan * 2);
        c.insert(key(3), plan(2));
        assert_eq!(c.len(), 2, "byte budget evicted the LRU plan");
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used() <= c.capacity());
    }

    #[test]
    fn oversized_entry_rejected_without_eviction() {
        let mut c: SizedCache<u64, u64> = SizedCache::new(10);
        c.insert(1, 10, 4);
        c.insert(2, 20, 4);
        c.insert(3, 30, 100);
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.stats().evictions, 0, "working set untouched");
        assert_eq!(c.len(), 2);
        assert!(c.get(&3).is_none());
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn replacing_heavier_value_releases_old_weight_first() {
        let mut c: SizedCache<u64, u64> = SizedCache::new(10);
        c.insert(1, 10, 6);
        // Same key, heavier value: old 6 released, new 9 fits alone —
        // no other entry exists, so no eviction.
        c.insert(1, 11, 9);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.used(), 9);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn clear_resets_residency_but_not_counters() {
        let mut c: SizedCache<u64, u64> = SizedCache::new(10);
        c.insert(1, 10, 4);
        assert!(c.get(&1).is_some());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
        assert_eq!(c.stats().insertions, 1);
        assert_eq!(c.stats().evictions, 0, "invalidation is not eviction");
        assert!(c.get(&1).is_none(), "cleared entries miss");
    }
}
