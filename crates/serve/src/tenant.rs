//! Tenants: identities, per-tenant configuration, and the weighted
//! round-robin session table.
//!
//! A multi-tenant [`FastService`](crate::FastService) keys everything that
//! used to be service-global — graph, epoch, plan cache, metrics — by
//! [`TenantId`]. Admission across tenants is **weighted fair**: submissions
//! land in a per-tenant lane of a `WrrQueue` and workers pop lanes in
//! deficit-round-robin order, so under saturation each backlogged tenant is
//! served in proportion to its quota (a 1:3 quota split yields exactly a
//! 1:3 pop ratio), while idle tenants neither accumulate credit nor hold
//! capacity hostage. Sessions waiting in a lane are queue entries, not
//! blocked OS threads — the table is what replaces the old global blocking
//! semaphore as the cross-tenant scheduling point.

use std::collections::VecDeque;

/// The single source of truth for a fresh tenant's graph epoch. The epoch
/// is folded into every plan-cache key ([`cst::PlanKey`]) and bumped on
/// graph mutation so stale plans can never hit; before multi-tenancy the
/// default lived (and could drift) in two places — `serve::cache` tests
/// and `ServeConfig` — both now derive from this constant.
pub const INITIAL_GRAPH_EPOCH: u64 = 0;

/// Identity of one tenant (one loaded graph + epoch + quota + cache
/// partition) inside a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u32);

impl TenantId {
    /// The compatibility tenant every service starts with: single-tenant
    /// callers (`submit`, the old examples) implicitly address it.
    pub const DEFAULT: TenantId = TenantId(0);

    pub(crate) fn new(raw: u32) -> Self {
        TenantId(raw)
    }

    /// The raw id (registration order, 0 = default tenant).
    pub fn raw(&self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Per-tenant knobs supplied at registration.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Fair-share weight of the admission round-robin. Must be ≥ 1 — a
    /// zero-quota tenant could never be scheduled and is rejected as
    /// [`ServeError::ZeroQuota`](crate::ServeError::ZeroQuota).
    pub quota: u32,
    /// Initial graph epoch (folded into the tenant's plan-cache keys).
    pub epoch: u64,
    /// Plan-cache capacity for this tenant's cache partition; `None`
    /// inherits [`ServeConfig::cache_capacity`](crate::ServeConfig::cache_capacity).
    pub cache_capacity: Option<usize>,
    /// Byte budget of this tenant's tier-2 shard-CST cache partition
    /// (`serve::cache::CstCache`); `None` inherits
    /// [`ServeConfig::cst_cache_bytes`](crate::ServeConfig::cst_cache_bytes),
    /// `Some(0)` disables tier 2 for this tenant alone.
    pub cst_cache_bytes: Option<usize>,
    /// Per-session deadline for this tenant, measured from submission: a
    /// session still queued or executing past it is shed with
    /// [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded).
    /// `None` inherits [`ServeConfig::deadline`](crate::ServeConfig::deadline).
    pub deadline: Option<std::time::Duration>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            quota: 1,
            epoch: INITIAL_GRAPH_EPOCH,
            cache_capacity: None,
            cst_cache_bytes: None,
            deadline: None,
        }
    }
}

struct Lane<T> {
    tenant: TenantId,
    weight: u32,
    /// Deficit-round-robin credit: pops remaining in the current round.
    credit: u32,
    queue: VecDeque<T>,
    /// Sessions of this tenant popped from the lane but currently parked —
    /// waiting on a device completion or a plan flight — rather than
    /// runnable. Bookkeeping only: parked sessions are *invisible* to the
    /// deficit round (they neither consume nor bank credit), which is what
    /// makes the scheduler readiness-aware — a tenant whose sessions are
    /// all parked on completions cannot hold up other tenants' deficits,
    /// and its own queued sessions keep popping at full weight.
    parked: u32,
}

/// A weighted round-robin multi-queue: one FIFO lane per tenant, popped in
/// deficit-round-robin order.
///
/// Each round grants every *backlogged* lane `weight` credits; a pop takes
/// from the current lane while it has credit and items, then advances.
/// When no backlogged lane has credit left the round restarts. Properties:
///
/// * **Weighted fairness under saturation** — backlogged lanes are served
///   exactly in proportion to their weights, deterministically (lane
///   registration order breaks ties within a round).
/// * **Work conservation** — an empty lane is skipped immediately; its
///   credit resets at the next round rather than banking (an idle tenant
///   cannot burst past its share later at others' expense).
/// * **FIFO within a tenant** — lanes preserve submission order, so
///   per-tenant latency ordering is unchanged from the single-tenant queue.
pub(crate) struct WrrQueue<T> {
    lanes: Vec<Lane<T>>,
    /// Lane the next pop inspects first.
    cursor: usize,
    len: usize,
}

impl<T> WrrQueue<T> {
    pub(crate) fn new() -> Self {
        WrrQueue {
            lanes: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Registers a lane. Weight must be ≥ 1 (validated by the caller —
    /// the service rejects zero quotas before the lane exists).
    pub(crate) fn add_lane(&mut self, tenant: TenantId, weight: u32) {
        debug_assert!(weight >= 1, "zero-weight lanes are rejected upstream");
        self.lanes.push(Lane {
            tenant,
            weight,
            credit: weight,
            queue: VecDeque::new(),
            parked: 0,
        });
    }

    /// Enqueues an item on `tenant`'s lane. Returns `false` (item dropped)
    /// if the lane does not exist — callers validate tenant ids first.
    pub(crate) fn push(&mut self, tenant: TenantId, item: T) -> bool {
        match self.lanes.iter_mut().find(|l| l.tenant == tenant) {
            Some(lane) => {
                lane.queue.push_back(item);
                self.len += 1;
                true
            }
            None => false,
        }
    }

    /// Pops the next item in deficit-round-robin order; `None` when every
    /// lane is empty.
    pub(crate) fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        loop {
            let lanes = self.lanes.len();
            for step in 0..lanes {
                let i = (self.cursor + step) % lanes;
                let lane = &mut self.lanes[i];
                if lane.credit > 0 && !lane.queue.is_empty() {
                    lane.credit -= 1;
                    self.len -= 1;
                    let item = lane.queue.pop_front();
                    // Stay on this lane while it has credit and work;
                    // otherwise the next pop starts at the next lane.
                    self.cursor = if lane.credit > 0 && !lane.queue.is_empty() {
                        i
                    } else {
                        (i + 1) % lanes
                    };
                    return item;
                }
            }
            // Round over: replenish backlogged lanes only (idle lanes do
            // not bank credit) and start the next round.
            for lane in &mut self.lanes {
                lane.credit = if lane.queue.is_empty() { 0 } else { lane.weight };
            }
        }
    }

    /// Queued items across all lanes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Records that one of `tenant`'s sessions left the runnable set —
    /// parked on a device completion or a plan flight. Parked sessions are
    /// not lane entries, so the deficit round never waits on them; this
    /// counter only keeps the readiness picture observable.
    pub(crate) fn park(&mut self, tenant: TenantId) {
        if let Some(lane) = self.lanes.iter_mut().find(|l| l.tenant == tenant) {
            lane.parked += 1;
        }
    }

    /// Reverses [`park`](Self::park) when the session resumes (or dies).
    pub(crate) fn unpark(&mut self, tenant: TenantId) {
        if let Some(lane) = self.lanes.iter_mut().find(|l| l.tenant == tenant) {
            lane.parked = lane.parked.saturating_sub(1);
        }
    }

    /// Sessions currently parked across all tenants.
    pub(crate) fn parked_total(&self) -> usize {
        self.lanes.iter().map(|l| l.parked as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_lane_queue(wa: u32, wb: u32) -> WrrQueue<(char, usize)> {
        let mut q = WrrQueue::new();
        q.add_lane(TenantId::new(0), wa);
        q.add_lane(TenantId::new(1), wb);
        q
    }

    #[test]
    fn saturated_lanes_split_by_weight() {
        let mut q = two_lane_queue(1, 3);
        for i in 0..32 {
            q.push(TenantId::new(0), ('a', i));
            q.push(TenantId::new(1), ('b', i));
        }
        let popped: Vec<char> = (0..32).map(|_| q.pop().unwrap().0).collect();
        let b = popped.iter().filter(|&&c| c == 'b').count();
        assert_eq!(b, 24, "1:3 quotas pop exactly 8:24 over 32: {popped:?}");
        // FIFO within each lane.
        let mut q2 = two_lane_queue(1, 3);
        for i in 0..4 {
            q2.push(TenantId::new(1), ('b', i));
        }
        let order: Vec<usize> = (0..4).map(|_| q2.pop().unwrap().1).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn idle_lane_does_not_bank_credit() {
        let mut q = two_lane_queue(4, 1);
        // Lane a idle for many rounds while b drains.
        for i in 0..10 {
            q.push(TenantId::new(1), ('b', i));
        }
        for _ in 0..10 {
            q.pop().unwrap();
        }
        // Now both become backlogged: a gets its weight per round, not
        // 10 rounds of banked credit beyond it — over one round of 5 pops
        // the split is exactly 4:1.
        for i in 0..20 {
            q.push(TenantId::new(0), ('a', i));
            q.push(TenantId::new(1), ('b', i));
        }
        let first_round: Vec<char> = (0..5).map(|_| q.pop().unwrap().0).collect();
        assert_eq!(first_round.iter().filter(|&&c| c == 'a').count(), 4, "{first_round:?}");
    }

    #[test]
    fn empty_and_unknown_lanes() {
        let mut q: WrrQueue<u32> = WrrQueue::new();
        assert!(q.pop().is_none());
        q.add_lane(TenantId::new(0), 1);
        assert!(q.pop().is_none());
        assert!(!q.push(TenantId::new(9), 1), "unknown lane is rejected");
        assert!(q.push(TenantId::new(0), 7));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(7));
        assert!(q.pop().is_none());
    }

    #[test]
    fn parked_sessions_do_not_hold_up_the_deficit() {
        // Tenant b holds heavy quota but every one of its sessions is
        // parked on device completions (not lane entries): tenant a's
        // queued work must flow without waiting on b's deficit, and the
        // park bookkeeping must not disturb b's weighted share once its
        // own queued work returns.
        let mut q = two_lane_queue(1, 3);
        for _ in 0..5 {
            q.park(TenantId::new(1));
        }
        assert_eq!(q.parked_total(), 5);
        for i in 0..4 {
            q.push(TenantId::new(0), ('a', i));
        }
        let popped: Vec<char> = (0..4).map(|_| q.pop().unwrap().0).collect();
        assert_eq!(popped, vec!['a'; 4], "parked lanes never stall others");
        for _ in 0..5 {
            q.unpark(TenantId::new(1));
        }
        assert_eq!(q.parked_total(), 0);
        q.unpark(TenantId::new(1)); // saturates, never underflows
        assert_eq!(q.parked_total(), 0);
        q.park(TenantId::new(9)); // unknown tenants are ignored
        assert_eq!(q.parked_total(), 0);
        // Weighted split unchanged by the park/unpark churn.
        for i in 0..32 {
            q.push(TenantId::new(0), ('a', i));
            q.push(TenantId::new(1), ('b', i));
        }
        let popped: Vec<char> = (0..32).map(|_| q.pop().unwrap().0).collect();
        assert_eq!(popped.iter().filter(|&&c| c == 'b').count(), 24);
    }

    #[test]
    fn work_conserving_when_one_lane_drains() {
        let mut q = two_lane_queue(1, 1);
        for i in 0..6 {
            q.push(TenantId::new(0), ('a', i));
        }
        q.push(TenantId::new(1), ('b', 0));
        // After b drains, a's items flow without stalls.
        let popped: Vec<char> = (0..7).map(|_| q.pop().unwrap().0).collect();
        assert_eq!(popped.iter().filter(|&&c| c == 'a').count(), 6);
        assert!(q.pop().is_none());
    }
}
