//! The heterogeneous device pool and its dispatch policy.
//!
//! The paper's multi-FPGA extension (Section VII-E) assigns each CST — "an
//! independent and complete search space" — to "the FPGA with the minimum
//! total workload" using the `W_CST` estimate. The serving pool generalises
//! that twice. First, from one query's partitions to a concurrent stream:
//! every partition of every in-flight session is booked onto a device and
//! completions release the booking. Second, from homogeneous cards to a
//! **heterogeneous fleet**: each device wraps an
//! [`ExecutionBackend`] — an emulated FPGA card or
//! a CPU fallback share — and the scheduler prices workload in **modelled
//! seconds** under each backend's own cost model, because raw `W_CST` queue
//! lengths are only comparable between identical devices. Dispatch is
//! shortest *expected completion*: the device minimising
//! `(outstanding + new) × sec_per_workload`, where `sec_per_workload` is
//! the device's observed modelled-seconds-per-workload rate (its prior
//! before the first completion calibrates it). For a homogeneous pool the
//! rate divides out and this is exactly the paper's minimum-outstanding
//! rule.
//!
//! Admission also reports the **modelled queueing delay** the partition
//! joins behind — the chosen device's outstanding booked workload at its
//! rate — which the serving layer folds into per-session latency so the
//! throughput–latency curves stay device-faithful at high concurrency (the
//! host wall alone hides contention on the modelled devices).

use crate::service::ServeError;
use fast::{BackendClass, CpuBackend, ExecutionBackend, FastConfig, FpgaBackend};
use fpga_sim::FpgaSpec;
use std::sync::Arc;

/// Description of one device in a [`ServeConfig`](crate::ServeConfig)
/// fleet, resolved to an [`ExecutionBackend`] at service construction.
#[derive(Debug, Clone)]
pub enum DeviceKind {
    /// An emulated FPGA card with its own spec (BRAM, clock, ports); runs
    /// the session's variant at that spec.
    Fpga(FpgaSpec),
    /// A CPU fallback share modelling `threads` host workers.
    Cpu { threads: usize },
}

/// Accumulated counters of one pool device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceStats {
    /// What kind of backend the device wraps.
    pub class: BackendClass,
    /// Workload admitted but not yet completed (the virtual queue length).
    pub outstanding_workload: f64,
    /// Total workload ever booked.
    pub total_workload: f64,
    /// Partitions executed.
    pub partitions: u64,
    /// Modelled kernel cycles executed (0 for CPU devices — their cost
    /// model has no cycle notion; see `busy_sec`).
    pub cycles: u64,
    /// Modelled execution seconds under the device's own cost model — the
    /// cross-backend utilisation currency.
    pub busy_sec: f64,
}

impl DeviceStats {
    fn new(class: BackendClass) -> Self {
        DeviceStats {
            class,
            outstanding_workload: 0.0,
            total_workload: 0.0,
            partitions: 0,
            cycles: 0,
            busy_sec: 0.0,
        }
    }
}

struct Device {
    backend: Arc<dyn ExecutionBackend>,
    stats: DeviceStats,
    /// Per-device calibration: completed workload and the modelled seconds
    /// it cost, yielding the observed sec-per-workload rate.
    completed_workload: f64,
    completed_sec: f64,
    /// The backend's a-priori rate, used until the first completion.
    prior_sec_per_workload: f64,
}

impl Device {
    /// Observed (or prior) modelled seconds per unit of booked workload.
    fn sec_per_workload(&self) -> f64 {
        if self.completed_workload > 0.0 {
            self.completed_sec / self.completed_workload
        } else {
            self.prior_sec_per_workload
        }
    }
}

/// A pool of heterogeneous execution backends with
/// shortest-expected-completion dispatch.
pub struct DevicePool {
    devices: Vec<Device>,
}

impl std::fmt::Debug for DevicePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DevicePool")
            .field("devices", &self.snapshot())
            .finish()
    }
}

impl DevicePool {
    /// Creates a pool over `backends`; an empty fleet is a typed
    /// [`ServeError::NoDevices`] (there is nothing to schedule onto).
    pub fn new(backends: Vec<Arc<dyn ExecutionBackend>>) -> Result<Self, ServeError> {
        if backends.is_empty() {
            return Err(ServeError::NoDevices);
        }
        let devices = backends
            .into_iter()
            .map(|backend| Device {
                stats: DeviceStats::new(backend.spec().class),
                prior_sec_per_workload: backend.prior_sec_per_workload().max(0.0),
                completed_workload: 0.0,
                completed_sec: 0.0,
                backend,
            })
            .collect();
        Ok(DevicePool { devices })
    }

    /// A homogeneous fleet of `cards` emulated FPGA devices at `fast`'s
    /// spec/variant — the pre-heterogeneous pool, and still the default.
    pub fn fpga_fleet(fast: &FastConfig, cards: usize) -> Result<Self, ServeError> {
        Self::new(
            (0..cards)
                .map(|_| Arc::new(FpgaBackend::from_config(fast)) as Arc<dyn ExecutionBackend>)
                .collect(),
        )
    }

    /// Resolves a [`ServeConfig`](crate::ServeConfig)-style fleet:
    /// `cards` FPGA devices at `fast`'s spec plus one device per
    /// `extra` entry.
    pub fn build(
        fast: &FastConfig,
        cards: usize,
        extra: &[DeviceKind],
    ) -> Result<Self, ServeError> {
        let mut backends: Vec<Arc<dyn ExecutionBackend>> = (0..cards)
            .map(|_| Arc::new(FpgaBackend::from_config(fast)) as Arc<dyn ExecutionBackend>)
            .collect();
        for kind in extra {
            backends.push(match kind {
                DeviceKind::Fpga(spec) => {
                    let mut per_card = fast.clone();
                    per_card.spec = spec.clone();
                    Arc::new(FpgaBackend::from_config(&per_card))
                }
                DeviceKind::Cpu { threads } => Arc::new(CpuBackend::new(*threads)),
            });
        }
        Self::new(backends)
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The smallest FPGA BRAM across the fleet, if any FPGA device exists —
    /// the partition-size constraint a shared partition stream must respect
    /// (CPU devices accept any partition).
    pub fn min_fpga_bram(&self) -> Option<usize> {
        self.devices
            .iter()
            .map(|d| d.backend.spec())
            .filter(|s| s.class == BackendClass::Fpga)
            .map(|s| s.bram_bytes)
            .min()
    }

    /// Books `workload` onto the device with the shortest expected
    /// completion — minimum `(outstanding + workload) · sec_per_workload`
    /// under each device's own observed (or prior) rate; ties → lowest
    /// index. Returns the device id, the modelled seconds already queued
    /// ahead of this partition on it, and the backend to execute on (so
    /// the kernel runs outside the pool lock).
    pub fn admit(&mut self, workload: f64) -> (usize, f64, Arc<dyn ExecutionBackend>) {
        let device = (0..self.devices.len())
            .min_by(|&a, &b| {
                let ca = (self.devices[a].stats.outstanding_workload + workload)
                    * self.devices[a].sec_per_workload();
                let cb = (self.devices[b].stats.outstanding_workload + workload)
                    * self.devices[b].sec_per_workload();
                ca.total_cmp(&cb)
            })
            .expect("pool is non-empty");
        let d = &mut self.devices[device];
        let queued_sec = d.stats.outstanding_workload * d.sec_per_workload();
        d.stats.outstanding_workload += workload;
        d.stats.total_workload += workload;
        (device, queued_sec, Arc::clone(&d.backend))
    }

    /// Completes a partition previously admitted to `device`: releases its
    /// workload booking, records the modelled seconds/cycles it actually
    /// cost, and feeds the device's sec-per-workload calibration.
    pub fn complete(&mut self, device: usize, workload: f64, modeled_sec: f64, cycles: u64) {
        let d = &mut self.devices[device];
        d.stats.outstanding_workload = (d.stats.outstanding_workload - workload).max(0.0);
        d.stats.partitions += 1;
        d.stats.cycles += cycles;
        d.stats.busy_sec += modeled_sec;
        d.completed_workload += workload;
        d.completed_sec += modeled_sec;
    }

    /// Per-device counters.
    pub fn snapshot(&self) -> Vec<DeviceStats> {
        self.devices.iter().map(|d| d.stats).collect()
    }

    /// The busiest device's modelled execution seconds — the fleet's
    /// makespan, comparable across backend classes.
    pub fn makespan_sec(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.stats.busy_sec)
            .fold(0.0, f64::max)
    }

    /// Total modelled execution seconds across devices.
    pub fn busy_sec(&self) -> f64 {
        self.devices.iter().map(|d| d.stats.busy_sec).sum()
    }

    /// Total modelled cycles across FPGA devices.
    pub fn total_cycles(&self) -> u64 {
        self.devices.iter().map(|d| d.stats.cycles).sum()
    }

    /// Load imbalance: max/mean booked workload (1.0 when idle).
    pub fn imbalance(&self) -> f64 {
        let max = self
            .devices
            .iter()
            .map(|d| d.stats.total_workload)
            .fold(0.0, f64::max);
        let mean = self
            .devices
            .iter()
            .map(|d| d.stats.total_workload)
            .sum::<f64>()
            / self.devices.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast::Variant;

    fn fpga_pool(cards: usize) -> DevicePool {
        DevicePool::fpga_fleet(&FastConfig::test_small(Variant::Sep), cards).unwrap()
    }

    #[test]
    fn admit_picks_least_loaded_with_low_index_ties() {
        // Homogeneous fleet: equal rates divide out and dispatch reduces
        // to the paper's minimum-outstanding-workload rule.
        let mut pool = fpga_pool(3);
        assert_eq!(pool.admit(10.0).0, 0, "all idle: lowest index");
        assert_eq!(pool.admit(1.0).0, 1);
        assert_eq!(pool.admit(1.0).0, 2);
        // Device 1 and 2 tie at 1.0 < 10.0: lowest index wins.
        assert_eq!(pool.admit(5.0).0, 1);
        assert_eq!(pool.admit(0.5).0, 2);
    }

    #[test]
    fn admit_estimates_seconds_queued_ahead() {
        let mut pool = fpga_pool(1);
        let (d, queued, _) = pool.admit(1.0);
        assert!(queued >= 0.0, "idle device: nothing queued ahead");
        pool.complete(d, 1.0, 0.5, 500); // calibration: 0.5 s per unit workload
        let (_, queued, _) = pool.admit(2.0);
        assert_eq!(queued, 0.0, "idle device: nothing queued ahead");
        let (_, queued, _) = pool.admit(1.0);
        assert!((queued - 1.0).abs() < 1e-12, "2.0 workload ahead at 0.5 s/unit: {queued}");
        let (_, queued, _) = pool.admit(1.0);
        assert!((queued - 1.5).abs() < 1e-12, "{queued}");
    }

    #[test]
    fn calibrated_rates_steer_toward_the_faster_device() {
        // Two devices; device 0 calibrates 10× slower than device 1. The
        // scheduler should keep device 1 ~10× busier.
        let mut pool = fpga_pool(2);
        pool.complete(0, 1.0, 1.0, 0);
        pool.complete(1, 1.0, 0.1, 0);
        let placed: Vec<usize> = (0..22).map(|_| pool.admit(1.0).0).collect();
        let fast_count = placed.iter().filter(|&&d| d == 1).count();
        assert!(
            fast_count >= 18,
            "fast device should absorb ~10/11 of the stream: {placed:?}"
        );
    }

    #[test]
    fn complete_releases_booking_and_records_costs() {
        let mut pool = fpga_pool(2);
        let (d, _, _) = pool.admit(7.0);
        pool.complete(d, 7.0, 0.25, 1000);
        let snap = pool.snapshot();
        assert_eq!(snap[d].outstanding_workload, 0.0);
        assert_eq!(snap[d].partitions, 1);
        assert_eq!(snap[d].cycles, 1000);
        assert_eq!(snap[d].busy_sec, 0.25);
        assert_eq!(pool.makespan_sec(), 0.25);
        assert_eq!(pool.busy_sec(), 0.25);
        assert_eq!(pool.total_cycles(), 1000);
        // Calibrate the other device to the same rate: with the booking
        // released and rates equal, dispatch ties back to lowest index.
        pool.complete(1 - d, 7.0, 0.25, 0);
        assert_eq!(pool.admit(1.0).0, 0);
    }

    #[test]
    fn heterogeneous_pool_exposes_classes_and_bram_floor() {
        let fast = FastConfig::test_small(Variant::Sep);
        let mut small_spec = fast.spec.clone();
        small_spec.bram_bytes /= 2;
        let pool = DevicePool::build(
            &fast,
            1,
            &[DeviceKind::Fpga(small_spec.clone()), DeviceKind::Cpu { threads: 8 }],
        )
        .unwrap();
        assert_eq!(pool.len(), 3);
        let classes: Vec<BackendClass> = pool.snapshot().iter().map(|d| d.class).collect();
        assert_eq!(
            classes,
            vec![BackendClass::Fpga, BackendClass::Fpga, BackendClass::Cpu]
        );
        assert_eq!(pool.min_fpga_bram(), Some(small_spec.bram_bytes));
        // A CPU-only pool has no FPGA BRAM floor.
        let cpu_only = DevicePool::build(&fast, 0, &[DeviceKind::Cpu { threads: 4 }]).unwrap();
        assert_eq!(cpu_only.min_fpga_bram(), None);
    }

    #[test]
    fn empty_fleet_is_a_typed_error() {
        let fast = FastConfig::test_small(Variant::Sep);
        let err = DevicePool::fpga_fleet(&fast, 0).unwrap_err();
        assert_eq!(err, ServeError::NoDevices);
        let err = DevicePool::build(&fast, 0, &[]).unwrap_err();
        assert_eq!(err, ServeError::NoDevices);
        assert!(err.to_string().contains("no devices"), "{err}");
    }
}
