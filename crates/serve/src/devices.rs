//! The emulated device pool and its dispatch policy.
//!
//! The paper's multi-FPGA extension (Section VII-E) assigns each CST — "an
//! independent and complete search space" — to "the FPGA with the minimum
//! total workload" using the `W_CST` estimate. The serving pool generalises
//! that from one query's partitions to a concurrent stream: every partition
//! of every in-flight session is booked onto the device whose *outstanding*
//! booked workload is smallest — shortest expected completion, since
//! outstanding workload is the length of the device's virtual queue.
//! Completions subtract their booking and add the partition's actual
//! modelled cycles, so utilisation reporting uses real (modelled) device
//! time while dispatch uses the a-priori estimate.
//!
//! Admission also reports the **modelled queueing delay** the partition
//! joins behind: the chosen device's outstanding booked workload converted
//! to cycles at the pool's observed cycles-per-workload rate. The serving
//! layer folds this into per-session latency so the throughput–latency
//! curves stay device-faithful at high concurrency (the host wall alone
//! hides the contention on the modelled cards).

use fpga_sim::FpgaSpec;

/// Accumulated counters of one emulated device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Workload admitted but not yet completed (the virtual queue length).
    pub outstanding_workload: f64,
    /// Total workload ever booked.
    pub total_workload: f64,
    /// Partitions executed.
    pub partitions: u64,
    /// Modelled kernel cycles executed.
    pub cycles: u64,
}

/// A pool of emulated FPGA devices with shortest-expected-completion
/// dispatch.
#[derive(Debug, Clone)]
pub struct DevicePool {
    devices: Vec<DeviceStats>,
    /// Workload completed across the pool — with `completed_cycles`, the
    /// observed cycles-per-workload rate that converts a device's
    /// outstanding *booked* workload into modelled device time at
    /// admission. A partition's exact cycle count exists only after its
    /// kernel ran, so the queueing estimate leans on `W_CST` the same way
    /// dispatch does (Section V-C: the a-priori cost model).
    completed_workload: f64,
    /// Modelled cycles completed across the pool (see
    /// [`completed_workload`](Self::completed_workload)).
    completed_cycles: f64,
}

impl DevicePool {
    /// Creates a pool of `cards` devices.
    ///
    /// # Panics
    /// Panics if `cards == 0`.
    pub fn new(cards: usize) -> Self {
        assert!(cards >= 1, "need at least one device");
        DevicePool {
            devices: vec![DeviceStats::default(); cards],
            completed_workload: 0.0,
            completed_cycles: 0.0,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The observed modelled cycles per unit of booked workload (0 until
    /// the first completion calibrates the pool).
    fn cycles_per_workload(&self) -> f64 {
        if self.completed_workload > 0.0 {
            self.completed_cycles / self.completed_workload
        } else {
            0.0
        }
    }

    /// Books `workload` onto the device with the shortest expected
    /// completion (minimum outstanding workload; ties → lowest index).
    /// Returns the device id and the modelled cycles already queued ahead
    /// of this partition — the outstanding booked workload converted at
    /// the pool's observed cycles-per-workload rate. Everything booked
    /// ahead must drain before the new partition starts, so this is the
    /// partition's modelled device queueing delay.
    pub fn admit(&mut self, workload: f64) -> (usize, u64) {
        let device = (0..self.devices.len())
            .min_by(|&a, &b| {
                self.devices[a]
                    .outstanding_workload
                    .total_cmp(&self.devices[b].outstanding_workload)
            })
            .expect("pool is non-empty");
        let rate = self.cycles_per_workload();
        let d = &mut self.devices[device];
        let queued_cycles = (d.outstanding_workload * rate).round() as u64;
        d.outstanding_workload += workload;
        d.total_workload += workload;
        (device, queued_cycles)
    }

    /// Completes a partition previously admitted to `device`: releases its
    /// workload booking, records the modelled cycles it actually cost, and
    /// feeds the cycles-per-workload calibration.
    pub fn complete(&mut self, device: usize, workload: f64, cycles: u64) {
        let d = &mut self.devices[device];
        d.outstanding_workload = (d.outstanding_workload - workload).max(0.0);
        d.partitions += 1;
        d.cycles += cycles;
        self.completed_workload += workload;
        self.completed_cycles += cycles as f64;
    }

    /// Per-device counters.
    pub fn snapshot(&self) -> Vec<DeviceStats> {
        self.devices.clone()
    }

    /// The busiest device's modelled cycles — the fleet's makespan.
    pub fn makespan_cycles(&self) -> u64 {
        self.devices.iter().map(|d| d.cycles).max().unwrap_or(0)
    }

    /// Total modelled cycles across devices.
    pub fn total_cycles(&self) -> u64 {
        self.devices.iter().map(|d| d.cycles).sum()
    }

    /// Load imbalance: max/mean booked workload (1.0 when idle).
    pub fn imbalance(&self) -> f64 {
        let max = self
            .devices
            .iter()
            .map(|d| d.total_workload)
            .fold(0.0, f64::max);
        let mean =
            self.devices.iter().map(|d| d.total_workload).sum::<f64>() / self.devices.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Modelled seconds the busiest device spent executing, at `spec`'s
    /// clock.
    pub fn makespan_sec(&self, spec: &FpgaSpec) -> f64 {
        spec.cycles_to_sec(self.makespan_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_picks_least_loaded_with_low_index_ties() {
        let mut pool = DevicePool::new(3);
        assert_eq!(pool.admit(10.0).0, 0, "all idle: lowest index");
        assert_eq!(pool.admit(1.0).0, 1);
        assert_eq!(pool.admit(1.0).0, 2);
        // Device 1 and 2 tie at 1.0 < 10.0: lowest index wins.
        assert_eq!(pool.admit(5.0).0, 1);
        assert_eq!(pool.admit(0.5).0, 2);
    }

    #[test]
    fn admit_estimates_cycles_queued_ahead() {
        let mut pool = DevicePool::new(1);
        let (d, queued) = pool.admit(1.0);
        assert_eq!(queued, 0, "uncalibrated pool estimates zero");
        pool.complete(d, 1.0, 500); // calibration: 500 cycles per unit workload
        let (_, queued) = pool.admit(2.0);
        assert_eq!(queued, 0, "idle device: nothing queued ahead");
        let (_, queued) = pool.admit(1.0);
        assert_eq!(queued, 1000, "2.0 workload ahead at 500 cycles/unit");
        let (_, queued) = pool.admit(1.0);
        assert_eq!(queued, 1500);
    }

    #[test]
    fn complete_releases_booking_and_records_cycles() {
        let mut pool = DevicePool::new(2);
        let (d, _) = pool.admit(7.0);
        pool.complete(d, 7.0, 1000);
        let snap = pool.snapshot();
        assert_eq!(snap[d].outstanding_workload, 0.0);
        assert_eq!(snap[d].partitions, 1);
        assert_eq!(snap[d].cycles, 1000);
        assert_eq!(pool.makespan_cycles(), 1000);
        assert_eq!(pool.total_cycles(), 1000);
        // Completed devices become preferred again.
        assert_eq!(pool.admit(1.0).0, d.min(1));
    }

    #[test]
    fn overlapping_stream_spreads_over_all_devices() {
        // Admissions overlap (nothing completes until the burst is in):
        // equal workloads round-robin across the pool.
        let mut pool = DevicePool::new(4);
        let placed: Vec<usize> = (0..40).map(|_| pool.admit(1.0).0).collect();
        for &d in &placed {
            pool.complete(d, 1.0, 10);
        }
        let snap = pool.snapshot();
        assert!(snap.iter().all(|d| d.partitions == 10), "{snap:?}");
        assert!((pool.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panic() {
        DevicePool::new(0);
    }
}
