//! The heterogeneous device pool and its dispatch policy.
//!
//! The paper's multi-FPGA extension (Section VII-E) assigns each CST — "an
//! independent and complete search space" — to "the FPGA with the minimum
//! total workload" using the `W_CST` estimate. The serving pool generalises
//! that twice. First, from one query's partitions to a concurrent stream:
//! every partition of every in-flight session is booked onto a device and
//! completions release the booking. Second, from homogeneous cards to a
//! **heterogeneous fleet**: each device wraps an
//! [`ExecutionBackend`] — an emulated FPGA card or
//! a CPU fallback share — and the scheduler prices workload in **modelled
//! seconds** under each backend's own cost model, because raw `W_CST` queue
//! lengths are only comparable between identical devices. Dispatch is
//! shortest *expected completion*: the device minimising
//! `(outstanding + new) × sec_per_workload`, where `sec_per_workload` is
//! the device's observed modelled-seconds-per-workload rate (its prior
//! before the first completion calibrates it). For a homogeneous pool the
//! rate divides out and this is exactly the paper's minimum-outstanding
//! rule.
//!
//! Admission also reports the **modelled queueing delay** the partition
//! joins behind — the chosen device's outstanding booked workload at its
//! rate — which the serving layer folds into per-session latency so the
//! throughput–latency curves stay device-faithful at high concurrency (the
//! host wall alone hides contention on the modelled devices).
//!
//! # Health
//!
//! Devices fail ([`fast::BackendError`]), so every device carries a
//! [`HealthState`] the dispatcher honours: only `Healthy` and `Probation`
//! devices are admitted. [`DevicePool::fail`] releases a failed booking
//! *without* feeding the sec-per-workload calibration (pricing stays
//! honest — failed attempts cost wall time but teach nothing about the
//! device's rate) and drives the state machine: `QUARANTINE_THRESHOLD`
//! consecutive failures quarantine the device for a penalty window of
//! admission ticks; an expired quarantine re-admits it **on probation**,
//! where one success restores `Healthy` and one failure re-quarantines
//! with a doubled penalty; a permanent error evicts the device for the
//! pool's lifetime. When every device is quarantined or evicted,
//! admission returns the typed [`ServeError::Degraded`] and the serving
//! layer falls back to an emergency CPU share (or sheds the session).

use crate::service::ServeError;
use fast::{BackendClass, CpuBackend, ExecutionBackend, FastConfig, FaultInjector, FaultPlan, FpgaBackend};
use fpga_sim::FpgaSpec;
use std::sync::Arc;

/// Consecutive failures that quarantine a healthy device.
pub const QUARANTINE_THRESHOLD: u32 = 3;
/// Base quarantine penalty, in admission ticks; doubles on each
/// re-quarantine (capped) — a flapping device is admitted ever more
/// rarely without ever being evicted outright.
pub const QUARANTINE_BASE_TICKS: u64 = 8;
/// Cap on penalty doublings (2⁶ · base = 512 ticks at most).
const QUARANTINE_MAX_SHIFT: u32 = 6;

/// Description of one device in a [`ServeConfig`](crate::ServeConfig)
/// fleet, resolved to an [`ExecutionBackend`] at service construction.
#[derive(Debug, Clone)]
pub enum DeviceKind {
    /// An emulated FPGA card with its own spec (BRAM, clock, ports); runs
    /// the session's variant at that spec.
    Fpga(FpgaSpec),
    /// A CPU fallback share modelling `threads` host workers.
    Cpu { threads: usize },
    /// Any device wrapped in a seeded [`FaultInjector`]: the fleet
    /// vocabulary of the chaos tests and figures. The wrapper delegates
    /// spec and pricing, so scheduling treats it exactly like its inner
    /// kind — until the schedule starts firing.
    Faulty {
        /// The wrapped device description.
        inner: Box<DeviceKind>,
        /// The injected fault schedule.
        plan: FaultPlan,
    },
}

/// Recovery state of one pool device. Only `Healthy` and `Probation`
/// devices are dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Serving normally.
    #[default]
    Healthy,
    /// Quarantine expired: re-admitted, but one failure re-quarantines
    /// immediately (with a doubled penalty) and one success restores
    /// `Healthy`.
    Probation,
    /// Too many consecutive failures: not admitted until the penalty
    /// window of admission ticks passes.
    Quarantined,
    /// A permanent error: never admitted again.
    Evicted,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Probation => write!(f, "probation"),
            HealthState::Quarantined => write!(f, "quarantined"),
            HealthState::Evicted => write!(f, "evicted"),
        }
    }
}

/// Accumulated counters of one pool device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceStats {
    /// What kind of backend the device wraps.
    pub class: BackendClass,
    /// Workload admitted but not yet completed (the virtual queue length).
    pub outstanding_workload: f64,
    /// Total workload ever booked.
    pub total_workload: f64,
    /// Partitions executed.
    pub partitions: u64,
    /// Modelled kernel cycles executed (0 for CPU devices — their cost
    /// model has no cycle notion; see `busy_sec`).
    pub cycles: u64,
    /// Modelled execution seconds under the device's own cost model — the
    /// cross-backend utilisation currency.
    pub busy_sec: f64,
    /// Execution attempts that failed on this device (transient, stalled,
    /// or permanent). Monotone.
    pub failures: u64,
    /// Corrupted outputs attributed to this device by the serving layer's
    /// cross-check. Monotone.
    pub corruptions: u64,
    /// Times this device entered quarantine. Monotone.
    pub quarantines: u64,
    /// Current recovery state.
    pub health: HealthState,
}

impl DeviceStats {
    fn new(class: BackendClass) -> Self {
        DeviceStats {
            class,
            outstanding_workload: 0.0,
            total_workload: 0.0,
            partitions: 0,
            cycles: 0,
            busy_sec: 0.0,
            failures: 0,
            corruptions: 0,
            quarantines: 0,
            health: HealthState::Healthy,
        }
    }

    /// Counters accumulated since `base` was captured — the rolling-window
    /// delta. Monotone counters subtract (exactly, on the integer fields);
    /// `outstanding_workload` and `health` are point-in-time and carried
    /// over from the current snapshot.
    pub fn delta(&self, base: &DeviceStats) -> DeviceStats {
        DeviceStats {
            class: self.class,
            outstanding_workload: self.outstanding_workload,
            total_workload: (self.total_workload - base.total_workload).max(0.0),
            partitions: self.partitions.saturating_sub(base.partitions),
            cycles: self.cycles.saturating_sub(base.cycles),
            busy_sec: (self.busy_sec - base.busy_sec).max(0.0),
            failures: self.failures.saturating_sub(base.failures),
            corruptions: self.corruptions.saturating_sub(base.corruptions),
            quarantines: self.quarantines.saturating_sub(base.quarantines),
            health: self.health,
        }
    }
}

struct Device {
    backend: Arc<dyn ExecutionBackend>,
    stats: DeviceStats,
    /// Per-device calibration: completed workload and the modelled seconds
    /// it cost, yielding the observed sec-per-workload rate.
    completed_workload: f64,
    completed_sec: f64,
    /// The backend's a-priori rate, used until the first completion.
    prior_sec_per_workload: f64,
    /// Failures since the last success (quarantine trigger).
    consecutive_failures: u32,
    /// Cross-check corruption strikes — see [`DevicePool::mark_suspect`].
    suspect_strikes: u32,
    /// Admission tick at which a quarantine expires into probation.
    quarantined_until: u64,
    /// Penalty doublings applied so far (capped).
    penalty_shift: u32,
}

impl Device {
    /// Observed (or prior) modelled seconds per unit of booked workload.
    fn sec_per_workload(&self) -> f64 {
        if self.completed_workload > 0.0 {
            self.completed_sec / self.completed_workload
        } else {
            self.prior_sec_per_workload
        }
    }

    /// Whether the dispatcher may book work onto this device.
    fn available(&self) -> bool {
        matches!(
            self.stats.health,
            HealthState::Healthy | HealthState::Probation
        )
    }
}

/// A pool of heterogeneous execution backends with
/// shortest-expected-completion dispatch and per-device health tracking.
pub struct DevicePool {
    devices: Vec<Device>,
    /// Admission tick counter: quarantine windows are measured in
    /// admissions, so penalties scale with traffic rather than wall time
    /// (the modelled devices have no wall of their own).
    tick: u64,
    /// Completion notifications for the event-driven session layer: the
    /// executor finishing a partition pushes the owning session's id here
    /// and whichever executor drains the queue next resumes that session.
    /// Tokens are opaque to the pool — a purely additive layer on top of
    /// the admit/complete/fail accounting, which is untouched by it.
    completions: std::collections::VecDeque<u64>,
}

impl std::fmt::Debug for DevicePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DevicePool")
            .field("devices", &self.snapshot())
            .finish()
    }
}

impl DevicePool {
    /// Creates a pool over `backends`; an empty fleet is a typed
    /// [`ServeError::NoDevices`] (there is nothing to schedule onto).
    pub fn new(backends: Vec<Arc<dyn ExecutionBackend>>) -> Result<Self, ServeError> {
        if backends.is_empty() {
            return Err(ServeError::NoDevices);
        }
        let devices = backends
            .into_iter()
            .map(|backend| Device {
                stats: DeviceStats::new(backend.spec().class),
                prior_sec_per_workload: backend.prior_sec_per_workload().max(0.0),
                completed_workload: 0.0,
                completed_sec: 0.0,
                consecutive_failures: 0,
                suspect_strikes: 0,
                quarantined_until: 0,
                penalty_shift: 0,
                backend,
            })
            .collect();
        Ok(DevicePool {
            devices,
            tick: 0,
            completions: std::collections::VecDeque::new(),
        })
    }

    /// Enqueues a completion token (FIFO). Called by the executor that ran
    /// a partition, under the same lock that guards admissions, so a token
    /// is never observable before the matching `complete`/`fail` call.
    pub fn push_completion(&mut self, token: u64) {
        self.completions.push_back(token);
    }

    /// Dequeues the oldest completion token, if any.
    pub fn pop_completion(&mut self) -> Option<u64> {
        self.completions.pop_front()
    }

    /// Completion tokens awaiting a resume.
    pub fn pending_completions(&self) -> usize {
        self.completions.len()
    }

    /// A homogeneous fleet of `cards` emulated FPGA devices at `fast`'s
    /// spec/variant — the pre-heterogeneous pool, and still the default.
    pub fn fpga_fleet(fast: &FastConfig, cards: usize) -> Result<Self, ServeError> {
        Self::new(
            (0..cards)
                .map(|_| Arc::new(FpgaBackend::from_config(fast)) as Arc<dyn ExecutionBackend>)
                .collect(),
        )
    }

    /// Resolves a [`ServeConfig`](crate::ServeConfig)-style fleet:
    /// `cards` FPGA devices at `fast`'s spec plus one device per
    /// `extra` entry.
    pub fn build(
        fast: &FastConfig,
        cards: usize,
        extra: &[DeviceKind],
    ) -> Result<Self, ServeError> {
        let mut backends: Vec<Arc<dyn ExecutionBackend>> = (0..cards)
            .map(|_| Arc::new(FpgaBackend::from_config(fast)) as Arc<dyn ExecutionBackend>)
            .collect();
        for kind in extra {
            backends.push(resolve_backend(fast, kind));
        }
        Self::new(backends)
    }

    /// Number of devices (any health state).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Devices the dispatcher may currently book onto (healthy or on
    /// probation). Quarantines that would expire at the next admission
    /// tick are not counted — this is a point-in-time view.
    pub fn available(&self) -> usize {
        self.devices.iter().filter(|d| d.available()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The smallest FPGA BRAM across the fleet, if any FPGA device exists —
    /// the partition-size constraint a shared partition stream must respect
    /// (CPU devices accept any partition).
    pub fn min_fpga_bram(&self) -> Option<usize> {
        self.devices
            .iter()
            .map(|d| d.backend.spec())
            .filter(|s| s.class == BackendClass::Fpga)
            .map(|s| s.bram_bytes)
            .min()
    }

    /// Books `workload` onto the *available* device with the shortest
    /// expected completion — minimum
    /// `(outstanding + workload) · sec_per_workload` under each device's
    /// own observed (or prior) rate; ties → lowest index. Returns the
    /// device id, the modelled seconds already queued ahead of this
    /// partition on it, and the backend to execute on (so the kernel runs
    /// outside the pool lock). When every device is quarantined or
    /// evicted, returns the typed [`ServeError::Degraded`].
    pub fn admit(
        &mut self,
        workload: f64,
    ) -> Result<(usize, f64, Arc<dyn ExecutionBackend>), ServeError> {
        self.admit_avoiding(workload, None)
    }

    /// [`admit`](Self::admit), preferring any available device **other
    /// than** `avoid` — the failover path: a retried partition should land
    /// on a different device than the one that just failed it. When
    /// `avoid` is the *only* available device it is used anyway (a lone
    /// survivor still beats shedding the session).
    pub fn admit_avoiding(
        &mut self,
        workload: f64,
        avoid: Option<usize>,
    ) -> Result<(usize, f64, Arc<dyn ExecutionBackend>), ServeError> {
        self.tick += 1;
        // Expired quarantines re-admit on probation.
        for (i, d) in self.devices.iter_mut().enumerate() {
            if d.stats.health == HealthState::Quarantined && self.tick >= d.quarantined_until {
                d.stats.health = HealthState::Probation;
                obs::event_on(
                    obs::device_track(i),
                    "probation",
                    "health",
                    vec![("device", obs::ArgValue::U64(i as u64))],
                );
            }
        }
        let pick = |pool: &Self, skip: Option<usize>| {
            (0..pool.devices.len())
                .filter(|&i| pool.devices[i].available() && Some(i) != skip)
                .min_by(|&a, &b| {
                    let ca = (pool.devices[a].stats.outstanding_workload + workload)
                        * pool.devices[a].sec_per_workload();
                    let cb = (pool.devices[b].stats.outstanding_workload + workload)
                        * pool.devices[b].sec_per_workload();
                    ca.total_cmp(&cb)
                })
        };
        let device = pick(self, avoid)
            .or_else(|| pick(self, None))
            .ok_or(ServeError::Degraded)?;
        let d = &mut self.devices[device];
        let queued_sec = d.stats.outstanding_workload * d.sec_per_workload();
        d.stats.outstanding_workload += workload;
        d.stats.total_workload += workload;
        Ok((device, queued_sec, Arc::clone(&d.backend)))
    }

    /// Completes a partition previously admitted to `device`: releases its
    /// workload booking, records the modelled seconds/cycles it actually
    /// cost, and feeds the device's sec-per-workload calibration. A
    /// success also resets the failure streak and graduates a probationary
    /// device back to `Healthy`.
    pub fn complete(&mut self, device: usize, workload: f64, modeled_sec: f64, cycles: u64) {
        let d = &mut self.devices[device];
        d.stats.outstanding_workload = (d.stats.outstanding_workload - workload).max(0.0);
        d.stats.partitions += 1;
        d.stats.cycles += cycles;
        d.stats.busy_sec += modeled_sec;
        d.completed_workload += workload;
        d.completed_sec += modeled_sec;
        d.consecutive_failures = 0;
        if d.stats.health == HealthState::Probation {
            d.stats.health = HealthState::Healthy;
            obs::event_on(
                obs::device_track(device),
                "recovered",
                "health",
                vec![("device", obs::ArgValue::U64(device as u64))],
            );
        }
    }

    /// Records a failed execution attempt on `device`: the booking is
    /// released **without** feeding the sec-per-workload calibration
    /// (failed work teaches nothing about the device's true rate), the
    /// failure counter bumps, and the health state machine advances —
    /// permanent errors evict, `QUARANTINE_THRESHOLD` consecutive
    /// failures (or any failure on probation) quarantine with a doubling
    /// penalty window.
    pub fn fail(&mut self, device: usize, workload: f64, permanent: bool) {
        let d = &mut self.devices[device];
        d.stats.outstanding_workload = (d.stats.outstanding_workload - workload).max(0.0);
        d.stats.failures += 1;
        self.note_failure(device, permanent);
    }

    /// Attributes a cross-check-caught corrupted output to `device`. The
    /// partition *completed* (its booking was already released by
    /// [`complete`](Self::complete)) but the answer was wrong — corrupt
    /// results quarantine at the same `QUARANTINE_THRESHOLD`, on a strike
    /// counter of their own: an interleaved successful completion does
    /// **not** clear corruption strikes, because a completion cannot prove
    /// the output was honest (that's exactly what the cross-check is for).
    /// Strikes reset on quarantine.
    pub fn mark_suspect(&mut self, device: usize) {
        let d = &mut self.devices[device];
        d.stats.corruptions += 1;
        d.suspect_strikes += 1;
        obs::event_on(
            obs::device_track(device),
            "corruption_strike",
            "health",
            vec![
                ("device", obs::ArgValue::U64(device as u64)),
                ("strikes", obs::ArgValue::U64(d.suspect_strikes as u64)),
            ],
        );
        let quarantine = match d.stats.health {
            // One strike on probation: straight back to quarantine.
            HealthState::Probation => true,
            HealthState::Healthy => d.suspect_strikes >= QUARANTINE_THRESHOLD,
            HealthState::Quarantined | HealthState::Evicted => false,
        };
        if quarantine {
            self.quarantine(device);
        }
    }

    fn note_failure(&mut self, device: usize, permanent: bool) {
        let d = &mut self.devices[device];
        d.consecutive_failures += 1;
        if permanent {
            d.stats.health = HealthState::Evicted;
            obs::counter(
                "obs_device_evictions_total",
                "Devices permanently evicted from the pool",
            )
            .inc();
            obs::event_on(
                obs::device_track(device),
                "evicted",
                "health",
                vec![("device", obs::ArgValue::U64(device as u64))],
            );
            return;
        }
        let quarantine = match d.stats.health {
            // One strike on probation: straight back to quarantine.
            HealthState::Probation => true,
            HealthState::Healthy => d.consecutive_failures >= QUARANTINE_THRESHOLD,
            HealthState::Quarantined | HealthState::Evicted => false,
        };
        if quarantine {
            self.quarantine(device);
        }
    }

    /// The Healthy/Probation → Quarantined transition: penalty window in
    /// admission ticks doubles per quarantine (capped), both strike
    /// counters reset so the probation verdict starts clean.
    fn quarantine(&mut self, device: usize) {
        let tick = self.tick;
        let d = &mut self.devices[device];
        d.stats.health = HealthState::Quarantined;
        d.stats.quarantines += 1;
        d.quarantined_until = tick + (QUARANTINE_BASE_TICKS << d.penalty_shift);
        d.penalty_shift = (d.penalty_shift + 1).min(QUARANTINE_MAX_SHIFT);
        d.consecutive_failures = 0;
        d.suspect_strikes = 0;
        obs::counter("obs_quarantines_total", "Device quarantine entries").inc();
        obs::event_on(
            obs::device_track(device),
            "quarantine",
            "health",
            vec![
                ("device", obs::ArgValue::U64(device as u64)),
                ("entries", obs::ArgValue::U64(d.stats.quarantines)),
                ("until_tick", obs::ArgValue::U64(d.quarantined_until)),
            ],
        );
    }

    /// Per-device counters.
    pub fn snapshot(&self) -> Vec<DeviceStats> {
        self.devices.iter().map(|d| d.stats).collect()
    }

    /// The busiest device's modelled execution seconds — the fleet's
    /// makespan, comparable across backend classes.
    pub fn makespan_sec(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.stats.busy_sec)
            .fold(0.0, f64::max)
    }

    /// Total modelled execution seconds across devices.
    pub fn busy_sec(&self) -> f64 {
        self.devices.iter().map(|d| d.stats.busy_sec).sum()
    }

    /// Total modelled cycles across FPGA devices.
    pub fn total_cycles(&self) -> u64 {
        self.devices.iter().map(|d| d.stats.cycles).sum()
    }

    /// Load imbalance: max/mean booked workload (1.0 when idle).
    pub fn imbalance(&self) -> f64 {
        let max = self
            .devices
            .iter()
            .map(|d| d.stats.total_workload)
            .fold(0.0, f64::max);
        let mean = self
            .devices
            .iter()
            .map(|d| d.stats.total_workload)
            .sum::<f64>()
            / self.devices.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Resolves one [`DeviceKind`] to its backend; [`DeviceKind::Faulty`]
/// recurses on the wrapped kind and wraps the result in a
/// [`FaultInjector`].
fn resolve_backend(fast: &FastConfig, kind: &DeviceKind) -> Arc<dyn ExecutionBackend> {
    match kind {
        DeviceKind::Fpga(spec) => {
            let mut per_card = fast.clone();
            per_card.spec = spec.clone();
            Arc::new(FpgaBackend::from_config(&per_card))
        }
        DeviceKind::Cpu { threads } => Arc::new(CpuBackend::new(*threads)),
        DeviceKind::Faulty { inner, plan } => Arc::new(FaultInjector::new(
            resolve_backend(fast, inner),
            plan.clone(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast::Variant;

    fn fpga_pool(cards: usize) -> DevicePool {
        DevicePool::fpga_fleet(&FastConfig::test_small(Variant::Sep), cards).unwrap()
    }

    /// `admit` on an all-healthy pool (every test fleet starts healthy).
    fn admit(pool: &mut DevicePool, workload: f64) -> (usize, f64, Arc<dyn ExecutionBackend>) {
        pool.admit(workload).expect("healthy pool admits")
    }

    #[test]
    fn completion_queue_is_fifo_and_orthogonal_to_scheduling() {
        let mut pool = fpga_pool(2);
        assert_eq!(pool.pending_completions(), 0);
        assert_eq!(pool.pop_completion(), None);
        pool.push_completion(7);
        pool.push_completion(3);
        pool.push_completion(7);
        assert_eq!(pool.pending_completions(), 3);
        // Interleaved scheduling traffic leaves the token order untouched.
        let (d, _, _) = admit(&mut pool, 1.0);
        pool.complete(d, 1.0, 0.1, 10);
        assert_eq!(pool.pop_completion(), Some(7));
        assert_eq!(pool.pop_completion(), Some(3));
        assert_eq!(pool.pop_completion(), Some(7));
        assert_eq!(pool.pop_completion(), None);
    }

    #[test]
    fn admit_picks_least_loaded_with_low_index_ties() {
        // Homogeneous fleet: equal rates divide out and dispatch reduces
        // to the paper's minimum-outstanding-workload rule.
        let mut pool = fpga_pool(3);
        assert_eq!(admit(&mut pool, 10.0).0, 0, "all idle: lowest index");
        assert_eq!(admit(&mut pool, 1.0).0, 1);
        assert_eq!(admit(&mut pool, 1.0).0, 2);
        // Device 1 and 2 tie at 1.0 < 10.0: lowest index wins.
        assert_eq!(admit(&mut pool, 5.0).0, 1);
        assert_eq!(admit(&mut pool, 0.5).0, 2);
    }

    #[test]
    fn admit_estimates_seconds_queued_ahead() {
        let mut pool = fpga_pool(1);
        let (d, queued, _) = admit(&mut pool, 1.0);
        assert!(queued >= 0.0, "idle device: nothing queued ahead");
        pool.complete(d, 1.0, 0.5, 500); // calibration: 0.5 s per unit workload
        let (_, queued, _) = admit(&mut pool, 2.0);
        assert_eq!(queued, 0.0, "idle device: nothing queued ahead");
        let (_, queued, _) = admit(&mut pool, 1.0);
        assert!((queued - 1.0).abs() < 1e-12, "2.0 workload ahead at 0.5 s/unit: {queued}");
        let (_, queued, _) = admit(&mut pool, 1.0);
        assert!((queued - 1.5).abs() < 1e-12, "{queued}");
    }

    #[test]
    fn calibrated_rates_steer_toward_the_faster_device() {
        // Two devices; device 0 calibrates 10× slower than device 1. The
        // scheduler should keep device 1 ~10× busier.
        let mut pool = fpga_pool(2);
        pool.complete(0, 1.0, 1.0, 0);
        pool.complete(1, 1.0, 0.1, 0);
        let placed: Vec<usize> = (0..22).map(|_| admit(&mut pool, 1.0).0).collect();
        let fast_count = placed.iter().filter(|&&d| d == 1).count();
        assert!(
            fast_count >= 18,
            "fast device should absorb ~10/11 of the stream: {placed:?}"
        );
    }

    #[test]
    fn complete_releases_booking_and_records_costs() {
        let mut pool = fpga_pool(2);
        let (d, _, _) = admit(&mut pool, 7.0);
        pool.complete(d, 7.0, 0.25, 1000);
        let snap = pool.snapshot();
        assert_eq!(snap[d].outstanding_workload, 0.0);
        assert_eq!(snap[d].partitions, 1);
        assert_eq!(snap[d].cycles, 1000);
        assert_eq!(snap[d].busy_sec, 0.25);
        assert_eq!(pool.makespan_sec(), 0.25);
        assert_eq!(pool.busy_sec(), 0.25);
        assert_eq!(pool.total_cycles(), 1000);
        // Calibrate the other device to the same rate: with the booking
        // released and rates equal, dispatch ties back to lowest index.
        pool.complete(1 - d, 7.0, 0.25, 0);
        assert_eq!(admit(&mut pool, 1.0).0, 0);
    }

    #[test]
    fn failed_bookings_release_without_calibrating() {
        let mut pool = fpga_pool(2);
        let (d, _, _) = admit(&mut pool, 5.0);
        let rate_before = pool.snapshot()[d].busy_sec;
        pool.fail(d, 5.0, false);
        let snap = pool.snapshot();
        assert_eq!(snap[d].outstanding_workload, 0.0, "booking released");
        assert_eq!(snap[d].failures, 1);
        assert_eq!(snap[d].partitions, 0, "a failure is not a completion");
        assert_eq!(snap[d].busy_sec, rate_before, "no cost recorded");
        assert_eq!(snap[d].health, HealthState::Healthy, "one strike is not out");
        // A success resets the streak: 2 failures + success + 2 failures
        // never reaches the threshold of 3 consecutive.
        pool.fail(d, 0.0, false);
        pool.complete(d, 1.0, 0.1, 0);
        pool.fail(d, 0.0, false);
        pool.fail(d, 0.0, false);
        assert_eq!(pool.snapshot()[d].health, HealthState::Healthy);
        assert_eq!(pool.snapshot()[d].quarantines, 0);
    }

    #[test]
    fn quarantine_probation_and_requarantine() {
        let mut pool = fpga_pool(2);
        // Three consecutive failures quarantine device 0.
        for _ in 0..QUARANTINE_THRESHOLD {
            pool.fail(0, 0.0, false);
        }
        assert_eq!(pool.snapshot()[0].health, HealthState::Quarantined);
        assert_eq!(pool.snapshot()[0].quarantines, 1);
        // While quarantined, dispatch avoids it entirely.
        for _ in 0..QUARANTINE_BASE_TICKS - 1 {
            assert_eq!(admit(&mut pool, 1.0).0, 1);
        }
        // The penalty window expires: re-admitted on probation, and with
        // device 1 loaded up it wins dispatch again.
        let (d, _, _) = admit(&mut pool, 1.0);
        assert_eq!(d, 0, "expired quarantine re-admits on probation");
        assert_eq!(pool.snapshot()[0].health, HealthState::Probation);
        // One probation failure: straight back to quarantine, penalty
        // doubled (base << 1).
        pool.fail(0, 1.0, false);
        assert_eq!(pool.snapshot()[0].health, HealthState::Quarantined);
        assert_eq!(pool.snapshot()[0].quarantines, 2);
        for _ in 0..2 * QUARANTINE_BASE_TICKS - 1 {
            assert_eq!(admit(&mut pool, 1.0).0, 1, "doubled penalty window");
        }
        let (d, _, _) = admit(&mut pool, 1.0);
        assert_eq!(d, 0);
        // A probation success graduates back to healthy.
        pool.complete(0, 1.0, 0.1, 0);
        assert_eq!(pool.snapshot()[0].health, HealthState::Healthy);
    }

    #[test]
    fn permanent_failure_evicts_for_good() {
        let mut pool = fpga_pool(2);
        pool.fail(0, 0.0, true);
        assert_eq!(pool.snapshot()[0].health, HealthState::Evicted);
        assert_eq!(pool.available(), 1);
        for _ in 0..1000 {
            assert_eq!(admit(&mut pool, 1.0).0, 1, "evicted devices never return");
        }
        // The whole fleet dead: admission is the typed degraded error.
        pool.fail(1, 0.0, true);
        match pool.admit(1.0) {
            Err(e) => assert_eq!(e, ServeError::Degraded),
            Ok(_) => panic!("a fully evicted pool must not admit"),
        }
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn admit_avoiding_reroutes_unless_lone_survivor() {
        let mut pool = fpga_pool(2);
        // Load device 1 heavily so plain dispatch would prefer 0.
        let (d, _, _) = admit(&mut pool, 100.0);
        assert_eq!(d, 0);
        // Avoiding 0 lands on 1 even though 0 is cheaper…
        let (d, _, _) = pool.admit_avoiding(1.0, Some(0)).unwrap();
        assert_eq!(d, 1, "failover avoids the failed device");
        // …but a lone survivor is used anyway.
        pool.fail(1, 1.0, true);
        let (d, _, _) = pool.admit_avoiding(1.0, Some(0)).unwrap();
        assert_eq!(d, 0, "the only available device beats shedding");
    }

    #[test]
    fn suspect_corruption_counts_toward_quarantine() {
        let mut pool = fpga_pool(2);
        for _ in 0..QUARANTINE_THRESHOLD {
            pool.mark_suspect(0);
        }
        let snap = pool.snapshot();
        assert_eq!(snap[0].corruptions, QUARANTINE_THRESHOLD as u64);
        assert_eq!(snap[0].failures, 0, "corruptions are not failed attempts");
        assert_eq!(snap[0].health, HealthState::Quarantined);
    }

    #[test]
    fn faulty_device_kind_resolves_through_the_wrapper() {
        let fast = FastConfig::test_small(Variant::Sep);
        let pool = DevicePool::build(
            &fast,
            0,
            &[DeviceKind::Faulty {
                inner: Box::new(DeviceKind::Cpu { threads: 4 }),
                plan: fast::FaultPlan::transient(1, 0.5),
            }],
        )
        .unwrap();
        // The wrapper delegates spec and class — scheduling sees a CPU.
        assert_eq!(pool.snapshot()[0].class, BackendClass::Cpu);
        assert_eq!(pool.min_fpga_bram(), None);
    }

    #[test]
    fn heterogeneous_pool_exposes_classes_and_bram_floor() {
        let fast = FastConfig::test_small(Variant::Sep);
        let mut small_spec = fast.spec.clone();
        small_spec.bram_bytes /= 2;
        let pool = DevicePool::build(
            &fast,
            1,
            &[DeviceKind::Fpga(small_spec.clone()), DeviceKind::Cpu { threads: 8 }],
        )
        .unwrap();
        assert_eq!(pool.len(), 3);
        let classes: Vec<BackendClass> = pool.snapshot().iter().map(|d| d.class).collect();
        assert_eq!(
            classes,
            vec![BackendClass::Fpga, BackendClass::Fpga, BackendClass::Cpu]
        );
        assert_eq!(pool.min_fpga_bram(), Some(small_spec.bram_bytes));
        // A CPU-only pool has no FPGA BRAM floor.
        let cpu_only = DevicePool::build(&fast, 0, &[DeviceKind::Cpu { threads: 4 }]).unwrap();
        assert_eq!(cpu_only.min_fpga_bram(), None);
    }

    #[test]
    fn empty_fleet_is_a_typed_error() {
        let fast = FastConfig::test_small(Variant::Sep);
        let err = DevicePool::fpga_fleet(&fast, 0).unwrap_err();
        assert_eq!(err, ServeError::NoDevices);
        let err = DevicePool::build(&fast, 0, &[]).unwrap_err();
        assert_eq!(err, ServeError::NoDevices);
        assert!(err.to_string().contains("no devices"), "{err}");
    }
}
