//! Observability quickstart: the serving stack with tracing on — a mixed
//! two-tenant workload traced end-to-end, rolling metrics windows pulled
//! while the load runs, a Prometheus text snapshot, and a Chrome
//! `trace_event` profile written to `target/observability.trace.json`
//! (load it in Perfetto or `chrome://tracing`).
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, LdbcParams};
use serve::{FastService, ServeConfig, TenantConfig};

fn main() {
    // Tracing is off by default (every hook is one relaxed atomic load);
    // turn it on before the service starts so construction is covered.
    obs::enable();

    let graph = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 7);
    let mut fast = FastConfig::for_variant(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    let service = FastService::new(
        graph,
        ServeConfig {
            fast,
            devices: 4,
            workers: 4,
            cache_capacity: 32,
            max_in_flight: 8,
            ..ServeConfig::default()
        },
    );
    // A second tenant with its own graph and triple the fair-share quota:
    // the trace carries every session's tenant id.
    let g2 = generate_ldbc(&LdbcParams::with_scale_factor(0.3), 11);
    let t2 = service
        .add_tenant(
            g2,
            TenantConfig {
                quota: 3,
                ..TenantConfig::default()
            },
        )
        .expect("second tenant");

    // A mixed closed-loop burst: both tenants, repeated queries (warm
    // tier-2 replays), with a rolling window pulled between waves.
    let mix = [0usize, 1, 2, 1, 0, 2, 1, 1];
    for wave in 0..3 {
        let handles: Vec<_> = mix
            .iter()
            .enumerate()
            .map(|(k, &qi)| {
                if k % 2 == 0 {
                    service.submit(benchmark_query(qi))
                } else {
                    service
                        .submit_for(t2, benchmark_query(qi))
                        .expect("tenant submit")
                }
            })
            .collect();
        for h in handles {
            h.wait().expect("session completes");
        }
        let w = service.report_window();
        let info = w.window.expect("window stamp");
        println!(
            "window {}: {:>2} sessions in {:.3}s ({:.1} QPS) | p99 {:.1}ms | \
             tier-2 {} hits / {} misses | retries {}",
            info.seq,
            w.completed,
            info.wall_sec,
            w.qps,
            w.latency_p99 * 1e3,
            w.cst_cache.hits,
            w.cst_cache.misses,
            w.retries,
        );
        let _ = wave;
    }

    // Prometheus text exposition: live obs_* registry counters plus the
    // serve_* report-derived families.
    let prom = service.prometheus_text();
    println!("\nprometheus snapshot ({} lines), head:", prom.lines().count());
    for line in prom.lines().take(8) {
        println!("  {line}");
    }

    let report = service.shutdown();
    obs::disable();
    println!(
        "\nserved {} sessions at {:.1} QPS | latency p50 {:.1}ms p99 {:.1}ms | \
         tier-2 hit rate {:.0}%",
        report.completed,
        report.qps,
        report.latency_p50 * 1e3,
        report.latency_p99 * 1e3,
        report.cst_cache.hit_rate() * 100.0,
    );

    // Export the trace and prove it loads: well-formed JSON, strictly
    // monotonic per-track timestamps, session ⊇ build ⊇ execute nesting.
    let (spans, events) = obs::trace_snapshot();
    let doc = obs::chrome_trace_json();
    let stats = obs::chrome::validate(&doc).expect("export self-validates");
    obs::chrome::check_nesting(&spans, &["session", "build", "execute"])
        .expect("spans nest: session ⊇ build ⊇ execute");
    assert_eq!(
        spans.iter().filter(|s| s.name == "session").count() as u64,
        report.submitted,
        "one session span per submission"
    );
    let path = std::path::Path::new("target").join("observability.trace.json");
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write(&path, &doc).expect("write trace");
    println!(
        "\nwrote {} ({} events on {} tracks, {} instant events) — load it in Perfetto",
        path.display(),
        stats.events,
        stats.tracks,
        events.len(),
    );
}
