//! Multi-tenant serving quickstart: one [`serve::FastService`] hosting two
//! tenants — each with its own graph, fair-share quota, and plan-cache
//! partition — over a heterogeneous device pool (emulated FPGA cards plus
//! a CPU fallback share), with one tenant restored from a binary CSR
//! snapshot instead of rebuilding its graph.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{benchmark_query, graph_fingerprint, save_snapshot};
use serve::{DeviceKind, FastService, ServeConfig, TenantConfig};

fn main() {
    // Tenant A's graph is loaded directly; tenant B's arrives via the
    // snapshot path a restart would take.
    let graph_a = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 7);
    let graph_b = generate_ldbc(&LdbcParams::with_scale_factor(0.3), 21);
    let snapshot_path =
        std::env::temp_dir().join(format!("fast-sm-multi-tenant-{}.bin", std::process::id()));
    save_snapshot(&graph_b, &snapshot_path).expect("snapshot write");
    let fingerprint_b = graph_fingerprint(&graph_b);
    drop(graph_b); // B is served from the snapshot alone.

    let mut fast = FastConfig::for_variant(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    let service = FastService::new(
        graph_a,
        ServeConfig {
            fast,
            devices: 2,
            // A CPU fallback share joins the two emulated cards: the
            // scheduler prices it under the search-cost model and steers
            // partitions wherever expected completion is shortest.
            extra_devices: vec![DeviceKind::Cpu { threads: 4 }],
            workers: 4,
            cache_capacity: 32,
            plan_cache_bytes: None,
            cst_cache_bytes: ServeConfig::default().cst_cache_bytes,
            max_in_flight: 16,
            ..ServeConfig::default()
        },
    );
    let tenant_b = service
        .load_tenant_snapshot(
            &snapshot_path,
            TenantConfig {
                quota: 3, // 3× tenant A's fair share under saturation
                ..TenantConfig::default()
            },
        )
        .expect("snapshot load");
    std::fs::remove_file(&snapshot_path).ok();
    let restored = service.tenant_graph(tenant_b).expect("tenant exists");
    assert_eq!(
        graph_fingerprint(&restored),
        fingerprint_b,
        "snapshot round-trip preserves the graph bit-for-bit"
    );
    println!(
        "tenant A: {} vertices (loaded) | tenant B: {} vertices (restored from snapshot, quota 3)\n",
        service.graph().vertex_count(),
        restored.vertex_count()
    );

    // A mixed stream: both tenants submit the same query shapes against
    // their own graphs; repeats hit each tenant's private cache partition.
    let mix = [1usize, 2, 1, 0, 1, 2, 1, 1];
    let mut handles = Vec::new();
    for &qi in &mix {
        handles.push(service.submit(benchmark_query(qi))); // tenant A
        handles.push(
            service
                .submit_for(tenant_b, benchmark_query(qi))
                .expect("tenant B session"),
        );
    }
    for h in handles {
        let r = h.wait().expect("session completes");
        println!(
            "{}: session {:>2} -> {:>8} embeddings over {:>3} partitions  {}",
            r.tenant,
            r.id,
            r.embeddings,
            r.partitions,
            if r.cache_hit { "hit" } else { "miss" },
        );
    }

    let report = service.shutdown();
    println!(
        "\nserved {} sessions at {:.1} QPS across {} devices ({} FPGA-cycles modelled)",
        report.completed,
        report.qps,
        report.devices.len(),
        report.devices.iter().map(|d| d.cycles).sum::<u64>(),
    );
    for t in &report.tenants {
        println!(
            "  {}: quota {} | {} completed | {:>9} embeddings | tier-2 hit rate {:.0}% ({} resident bytes)",
            t.tenant,
            t.quota,
            t.completed,
            t.total_embeddings,
            t.cst_hit_rate * 100.0,
            t.cst_resident_bytes
        );
    }
    for (i, d) in report.devices.iter().enumerate() {
        println!(
            "  device {i} ({}): {:>3} partitions, {:.3}s modelled busy",
            d.class, d.partitions, d.busy_sec
        );
    }
    assert_eq!(report.tenants.len(), 2);
    assert!(
        report.cst_cache.hits > 0,
        "repeats must hit the tier-2 shard-CST caches"
    );
}
