//! Protein-interaction-style motif search — the paper's other motivating
//! domain (protein-protein interaction network analysis, graphlet counting).
//!
//! Builds a labelled power-law "interaction network" (labels = protein
//! families) and counts classic 3- and 4-node motifs with FAST, verifying
//! each count against the VF2 oracle.
//!
//! ```sh
//! cargo run --release --example protein_motifs
//! ```

use fast::{run_fast, FastConfig, Variant};
use graph_core::generators::random_power_law_graph;
use graph_core::{Label, QueryGraph};
use matching::vf2_count;

fn motif(name: &str, labels: &[u16], edges: &[(usize, usize)]) -> (String, QueryGraph) {
    let q = QueryGraph::new(labels.iter().map(|&l| Label::new(l)).collect(), edges)
        .expect("motif is well-formed");
    (name.to_string(), q)
}

fn main() {
    // 4 protein families over a scale-free interaction network.
    let network = random_power_law_graph(4000, 5, 4, 2024);
    println!(
        "interaction network: {} proteins, {} interactions, max degree {}\n",
        network.vertex_count(),
        network.edge_count(),
        network.max_degree()
    );

    let motifs = vec![
        motif("feed-forward triangle (A-B-C)", &[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]),
        motif("bi-fan (A-B pair over C-D pair)", &[0, 0, 1, 1], &[(0, 2), (0, 3), (1, 2), (1, 3)]),
        motif("tagged 4-path", &[0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3)]),
        motif("4-cycle with chord", &[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
    ];

    let config = FastConfig::for_variant(Variant::Sep);
    println!(
        "{:<36} {:>12} {:>14} {:>12}",
        "motif", "occurrences", "kernel cycles", "modelled"
    );
    for (name, query) in motifs {
        let report = run_fast(&query, &network, &config).expect("motif fits the kernel");
        let oracle = vf2_count(&query, &network);
        assert_eq!(report.embeddings, oracle, "kernel disagrees with VF2 on {name}");
        println!(
            "{:<36} {:>12} {:>14} {:>10.2}ms",
            name,
            report.embeddings,
            report.kernel_cycles,
            report.modeled_total_sec() * 1e3
        );
    }
    println!("\nall motif counts verified against the VF2 oracle");
}
