//! Serving quickstart: a [`serve::FastService`] holding one loaded graph,
//! serving a concurrent stream of repeated queries across a pool of
//! emulated FPGA devices, with plan caching amortising the shard
//! probe/boundary search across repeats.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, LdbcParams};
use serve::{FastService, ServeConfig, SessionEvent};

fn main() {
    let graph = generate_ldbc(&LdbcParams::with_scale_factor(1.0), 7);
    println!(
        "serving a graph of {} vertices / {} edges\n",
        graph.vertex_count(),
        graph.edge_count()
    );

    let mut fast = FastConfig::for_variant(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    let service = FastService::new(
        graph,
        ServeConfig {
            fast,
            devices: 4,
            extra_devices: Vec::new(),
            workers: 4,
            cache_capacity: 32,
            plan_cache_bytes: None,
            cst_cache_bytes: ServeConfig::default().cst_cache_bytes,
            max_in_flight: 8,
            ..ServeConfig::default()
        },
    );

    // One session up close: per-partition results stream back as device
    // kernels drain.
    let handle = service.submit(benchmark_query(1));
    let mut parts = 0usize;
    loop {
        match handle.next_event().expect("session alive") {
            SessionEvent::Partition(u) => {
                parts += 1;
                if parts <= 3 {
                    println!(
                        "  partition {:>3} -> device {} : {:>6} embeddings ({} cycles)",
                        u.index, u.device, u.embeddings, u.kernel_cycles
                    );
                }
            }
            SessionEvent::Done(r) => {
                println!(
                    "  ... q1 done: {} embeddings over {} partitions, plan {:?} ({})\n",
                    r.embeddings,
                    r.partitions,
                    r.plan_time,
                    if r.cache_hit { "cache hit" } else { "cold plan" },
                );
                break;
            }
            SessionEvent::Failed(e) => panic!("session failed: {e}"),
        }
    }

    // A burst of repeated queries: plans come from the cache, partitions
    // are multiplexed across all four devices.
    let mix = [0usize, 1, 2, 1, 0, 1, 2, 1, 1, 2, 0, 1];
    let handles: Vec<_> = mix.iter().map(|&qi| service.submit(benchmark_query(qi))).collect();
    for (qi, h) in mix.iter().zip(handles) {
        let r = h.wait().expect("session completes");
        println!(
            "q{qi}: {:>8} embeddings  latency {:>9.3?}  queue {:>9.3?}  plan {:>9.3?}  {}",
            r.embeddings,
            r.latency,
            r.queue_wait,
            r.plan_time,
            if r.cache_hit { "hit" } else { "miss" },
        );
    }

    let report = service.shutdown();
    println!(
        "\nserved {} sessions at {:.1} QPS | latency p50 {:.1}ms p99 {:.1}ms | tier-2 hit rate {:.0}% ({} resident bytes) | {} devices, imbalance {:.2}x",
        report.completed,
        report.qps,
        report.latency_p50 * 1e3,
        report.latency_p99 * 1e3,
        report.cst_cache.hit_rate() * 100.0,
        report.cst_resident_bytes,
        report.devices.len(),
        report.device_imbalance,
    );
    for (i, d) in report.devices.iter().enumerate() {
        println!(
            "  device {i}: {:>4} partitions, {:>10} cycles",
            d.partitions, d.cycles
        );
    }
    assert!(
        report.cst_cache.hits > 0,
        "repeats must hit the tier-2 shard-CST cache"
    );
}
