//! Social-network analysis scenario: community patterns in an LDBC-like
//! graph — the workload class the paper's introduction motivates.
//!
//! Finds (1) friend triangles co-located in a city, (2) friend triangles
//! across two cities of a country, and (3) discussion patterns (a person's
//! post with a comment by a friend), comparing FAST against a CPU baseline.
//!
//! ```sh
//! cargo run --release --example social_network_analysis
//! ```

use fast::{run_fast, FastConfig};
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, LdbcParams};
use matching::{run_baseline, Baseline, RunLimits};

fn main() {
    let graph = generate_ldbc(&LdbcParams::with_scale_factor(0.5), 7);
    println!(
        "social network: {} vertices / {} edges\n",
        graph.vertex_count(),
        graph.edge_count()
    );

    let scenarios = [
        (6usize, "friend triangle in one city (q6)"),
        (7usize, "friend triangle across two cities of a country (q7)"),
        (2usize, "post-and-reply between friends, tagged (q2)"),
    ];

    println!(
        "{:<52} {:>12} {:>12} {:>12}",
        "pattern", "matches", "FAST", "CECI"
    );
    for (qi, description) in scenarios {
        let query = benchmark_query(qi);
        let fast_report =
            run_fast(&query, &graph, &FastConfig::default()).expect("query fits kernel");
        let ceci = run_baseline(Baseline::Ceci, &query, &graph, &RunLimits::default());
        assert_eq!(
            fast_report.embeddings, ceci.embeddings,
            "FAST and CECI must agree"
        );
        println!(
            "{:<52} {:>12} {:>10.2}ms {:>10.2}ms",
            description,
            fast_report.embeddings,
            fast_report.modeled_total_sec() * 1e3,
            ceci.modeled_total_sec() * 1e3,
        );
    }

    println!(
        "\n(times are modelled on the paper's platforms: Alveo U200 @ 300 MHz vs Xeon E5-2620 v4)"
    );
}
