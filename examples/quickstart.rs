//! Quickstart: match one benchmark query against a small LDBC-like graph.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fast::{run_fast, CollectMode, FastConfig};
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, label_name, LdbcParams};

fn main() {
    // A small synthetic social network (~3K vertices): Person/City/Post/
    // Comment/Tag/... with power-law hubs, like the paper's LDBC datasets.
    let graph = generate_ldbc(&LdbcParams::with_scale_factor(0.1), 42);
    println!(
        "data graph: {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // q1: two persons who know each other; one wrote a post, the other a
    // comment replying to it (paper Fig. 6).
    let query = benchmark_query(1);
    println!(
        "query q1: {} vertices, {} edges",
        query.vertex_count(),
        query.edge_count()
    );

    // Run the full co-designed pipeline: CST construction + partitioning on
    // the host, the pipelined kernel on the emulated FPGA. `host_threads`
    // enables the sharded host pipeline: shard CSTs are built on worker
    // threads and stream through the partitioner while later shards are
    // still under construction (results are identical for every thread
    // count). Collect a few embeddings so we can print them.
    let config = FastConfig {
        collect: CollectMode::Collect(3),
        host_threads: 4,
        ..FastConfig::default()
    };
    let report = run_fast(&query, &graph, &config).expect("query fits the kernel");

    println!(
        "\n{} found {} embeddings",
        report.variant, report.embeddings
    );
    println!(
        "kernel workload: N = {} partial results, M = {} edge validations",
        report.counts.n, report.counts.m
    );
    println!(
        "modelled elapsed: {:.3} ms  (CST build {:.3} ms over {} host threads / {} shards, kernel {:.3} ms at 300 MHz, PCIe {:.3} ms)",
        report.modeled_total_sec() * 1e3,
        report.modeled_build_parallel_sec * 1e3,
        report.host_threads,
        report.pipeline_shards,
        report.kernel_time_sec * 1e3,
        report.transfer_time_sec * 1e3,
    );

    for (i, emb) in report.collected.iter().enumerate() {
        let described: Vec<String> = emb
            .iter()
            .enumerate()
            .map(|(u, v)| {
                format!(
                    "u{u}({})->v{}",
                    label_name(query.label(graph_core::QueryVertexId::from_index(u))),
                    v.raw()
                )
            })
            .collect();
        println!("embedding {}: {}", i + 1, described.join(", "));
    }
}
