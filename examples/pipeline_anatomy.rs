//! Anatomy of the FPGA pipeline: how the paper's optimisation ladder
//! (Equations 1-4) plays out on a real workload, cross-checked against the
//! discrete-event simulator.
//!
//! ```sh
//! cargo run --release --example pipeline_anatomy
//! ```

use fast::des_check::{simulate_sep_cycles, simulate_task_cycles};
use fast::{run_fast, FastConfig, Variant};
use fpga_sim::{CycleModel, StageLatencies};
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, LdbcParams};

fn main() {
    let graph = generate_ldbc(&LdbcParams::with_scale_factor(0.3), 5);
    let query = benchmark_query(6); // dense: M > N, the regime TASK/SEP love

    // Measure the workload once (N and M are properties of the search).
    let report = run_fast(&query, &graph, &FastConfig::for_variant(Variant::Sep))
        .expect("query fits the kernel");
    let counts = report.counts;
    println!(
        "workload of q6: N = {} partial results, M = {} edge-validation tasks (M/N = {:.2})\n",
        counts.n,
        counts.m,
        counts.m as f64 / counts.n as f64
    );

    // The paper's closed-form ladder at the Alveo's parameters.
    let model = CycleModel::new(StageLatencies::default(), 4096, 1, 8);
    let ladder = [
        ("serial (Eq. 1)", model.serial(counts)),
        ("FAST-DRAM", model.dram(counts)),
        ("FAST-BASIC (Eq. 2)", model.basic(counts)),
        ("FAST-TASK (Eq. 3)", model.task(counts)),
        ("FAST-SEP (Eq. 4)", model.sep(counts)),
    ];
    println!("{:<20} {:>16} {:>12}", "design", "cycles", "at 300 MHz");
    for (name, cycles) in ladder {
        println!(
            "{:<20} {:>16} {:>10.2}ms",
            name,
            cycles,
            cycles as f64 / 300e6 * 1e3
        );
    }

    // Cross-check TASK and SEP against the discrete-event pipeline
    // simulator on a proportional synthetic stream.
    let n = 20_000u64;
    let k = (counts.m as f64 / counts.n as f64).round().max(1.0) as u64;
    let scaled = fpga_sim::WorkloadCounts { n, m: n * k };
    let des_task = simulate_task_cycles(n, k, 512);
    let des_sep = simulate_sep_cycles(n, k, 512);
    println!(
        "\nDES cross-check at N={n}, M={} (fan-out {k}):",
        scaled.m
    );
    println!(
        "  TASK: analytic {} vs simulated {} cycles ({:+.0}%)",
        model.task(scaled),
        des_task,
        (des_task as f64 / model.task(scaled) as f64 - 1.0) * 100.0
    );
    println!(
        "  SEP:  analytic {} vs simulated {} cycles ({:+.0}%)",
        model.sep(scaled),
        des_sep,
        (des_sep as f64 / model.sep(scaled) as f64 - 1.0) * 100.0
    );
}
