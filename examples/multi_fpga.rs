//! Multi-FPGA scale-out (paper Section VII-E).
//!
//! Each CST partition is an independent complete search space, so the host
//! can spread partitions across cards by estimated workload. This example
//! sweeps 1-8 emulated cards on a dense query and reports the makespan,
//! speedup, and balance the least-loaded scheduler achieves.
//!
//! ```sh
//! cargo run --release --example multi_fpga
//! ```

use fast::{run_multi_fpga, FastConfig, Variant};
use fpga_sim::FpgaSpec;
use graph_core::benchmark_query;
use graph_core::generators::{generate_ldbc, LdbcParams};

fn main() {
    let graph = generate_ldbc(&LdbcParams::with_scale_factor(2.0), 99);
    let query = benchmark_query(8); // the four-person clique: densest workload
    println!(
        "graph: {} vertices / {} edges; query q8 ({} vertices, {} edges)\n",
        graph.vertex_count(),
        graph.edge_count(),
        query.vertex_count(),
        query.edge_count()
    );

    // Small BRAM so the CST splits into enough partitions to balance.
    let mut config = FastConfig::for_variant(Variant::Sep);
    config.spec = FpgaSpec {
        bram_bytes: 1 << 20,
        no: 512,
        port_max: 2048,
        ..FpgaSpec::default()
    };

    println!(
        "{:>6} {:>12} {:>16} {:>10} {:>10}",
        "cards", "partitions", "makespan cycles", "speedup", "imbalance"
    );
    let mut embeddings = None;
    for cards in [1usize, 2, 4, 8] {
        let report = run_multi_fpga(&query, &graph, &config, cards).expect("query fits");
        // Scale-out must never change the answer.
        match embeddings {
            None => embeddings = Some(report.embeddings),
            Some(e) => assert_eq!(e, report.embeddings, "cards={cards} changed the count"),
        }
        println!(
            "{:>6} {:>12} {:>16} {:>9.2}x {:>9.2}x",
            cards,
            report.per_card_partitions.iter().sum::<usize>(),
            report.makespan_cycles,
            report.speedup(),
            report.imbalance()
        );
    }
    println!(
        "\n{} embeddings found identically at every fleet size",
        embeddings.unwrap_or(0)
    );
}
