//! Chaos property tests: under randomized seeded fault schedules —
//! transient errors, watchdog stalls, silent corruption, permanent device
//! death — the service still serves **bit-identical** embedding counts for
//! every shard planner and fleet shape, with exactly-once retry accounting
//! and monotone quarantine counters. Degenerate configurations (zero
//! deadline budget, a fleet that is dead on arrival) shed with *typed*
//! errors instead of hanging or panicking.

use fast::{FastConfig, FaultPlan, ShardPlanner, Variant};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{benchmark_query, Graph};
use proptest::prelude::*;
use serve::{
    DeviceKind, FastService, FaultPolicy, ServeConfig, ServeError, ServeReport, SessionHandle,
};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The serving studies' query subset (planner-heavy and flat shapes).
const QUERY_MIX: [usize; 4] = [0, 1, 2, 4];

/// The shared workload: graph + fault-free reference counts (fleet- and
/// planner-independent, witnessed by `prop_backend.rs`).
fn workload() -> &'static (Arc<Graph>, Vec<u64>) {
    static W: OnceLock<(Arc<Graph>, Vec<u64>)> = OnceLock::new();
    W.get_or_init(|| {
        let g = Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42));
        let baseline: Vec<u64> = QUERY_MIX
            .iter()
            .map(|&i| {
                fast::run_fast(
                    &benchmark_query(i),
                    &g,
                    &FastConfig::test_small(Variant::Sep),
                )
                .expect("fault-free reference")
                .embeddings
            })
            .collect();
        assert!(baseline.iter().any(|&e| e > 0), "degenerate workload");
        (g, baseline)
    })
}

/// A random fault schedule. `corrupt` gates silent corruption — the chaos
/// fleets give corruption to at most one device, so the cross-check always
/// has an honest second opinion within its vote budget.
fn arb_plan(corrupt: bool) -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0f64..0.35,
        0.0f64..0.2,
        0.0f64..0.25,
        (any::<bool>(), 4u64..64),
    )
        .prop_map(move |(seed, transient, stall, corrupt_rate, (dies, dies_at))| FaultPlan {
            seed,
            transient_rate: transient,
            stall_rate: stall,
            corrupt_rate: if corrupt { corrupt_rate } else { 0.0 },
            permanent_after: dies.then_some(dies_at),
            panic_after: None,
            slowdown: 1.0,
        })
}

fn faulty(inner: DeviceKind, plan: FaultPlan) -> DeviceKind {
    DeviceKind::Faulty {
        inner: Box::new(inner),
        plan,
    }
}

/// Fleet shapes under test. Each keeps one unwrapped (always-healthy)
/// device — the ISSUE's correctness bar is "any schedule leaving ≥ 1
/// healthy device" — and puts corruption on at most one device.
fn fleets(fast: &FastConfig, p0: FaultPlan, p1: FaultPlan) -> Vec<(&'static str, Vec<DeviceKind>)> {
    let fpga = || DeviceKind::Fpga(fast.spec.clone());
    vec![
        (
            "fpga-only",
            vec![faulty(fpga(), p0.clone()), faulty(fpga(), p1.clone()), fpga()],
        ),
        (
            "cpu-only",
            vec![
                faulty(DeviceKind::Cpu { threads: 2 }, p0.clone()),
                DeviceKind::Cpu { threads: 4 },
            ],
        ),
        (
            "mixed",
            vec![
                faulty(fpga(), p0),
                faulty(DeviceKind::Cpu { threads: 4 }, p1),
                fpga(),
            ],
        ),
    ]
}

fn chaos_config(planner: ShardPlanner, extra: Vec<DeviceKind>) -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = planner;
    ServeConfig {
        fast,
        devices: 0,
        extra_devices: extra,
        workers: 2,
        cache_capacity: 16,
        plan_cache_bytes: None,
        cst_cache_bytes: 16 << 20,
        max_in_flight: 8,
        fault: FaultPolicy {
            // A deep retry budget with zero backoff: the chaos runs probe
            // accounting and bit-identity, not wall-clock recovery.
            max_attempts: 16,
            backoff: Duration::ZERO,
            cross_check: true,
            cpu_fallback: true,
            ..FaultPolicy::default()
        },
        ..ServeConfig::default()
    }
}

/// Exactly-once retry accounting plus monotone health counters, asserted
/// against a mid-run snapshot and the final report.
fn assert_fault_invariants(mid: &ServeReport, report: &ServeReport, label: &str) {
    assert_eq!(report.failed, 0, "{label}: no session may fail");
    let device_failures: u64 = report.devices.iter().map(|d| d.failures).sum();
    assert_eq!(
        report.retries, device_failures,
        "{label}: every device failure is retried exactly once"
    );
    let device_corruptions: u64 = report.devices.iter().map(|d| d.corruptions).sum();
    assert_eq!(
        report.corruption_catches, device_corruptions,
        "{label}: every caught corruption is charged to a device"
    );
    assert!(report.failovers <= report.retries, "{label}: failovers ⊆ retries");
    // Monotonicity: counters only grow from the mid-run snapshot.
    assert!(report.retries >= mid.retries, "{label}: retries monotone");
    assert!(report.quarantines >= mid.quarantines, "{label}: quarantines monotone");
    assert!(
        report.corruption_catches >= mid.corruption_catches,
        "{label}: corruption catches monotone"
    );
    for (a, b) in mid.devices.iter().zip(&report.devices) {
        assert!(b.failures >= a.failures, "{label}: per-device failures monotone");
        assert!(b.quarantines >= a.quarantines, "{label}: per-device quarantines monotone");
    }
    assert!(report.is_finite(), "{label}: report stays finite");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole correctness bar: under any seeded fault schedule that
    /// leaves at least one healthy device, per-query embedding counts are
    /// bit-identical to the fault-free run — for all four shard planners
    /// across FPGA-only, CPU-only, and mixed fleets — with exactly-once
    /// retry accounting and monotone quarantine counters.
    #[test]
    fn chaos_serves_are_bit_identical_with_exact_accounting(
        p0 in arb_plan(true),
        p1 in arb_plan(false),
    ) {
        let (g, baseline) = workload();
        for planner in [
            ShardPlanner::Contiguous,
            ShardPlanner::WorkloadBalanced,
            ShardPlanner::OverlapAware,
            ShardPlanner::Auto,
        ] {
            for (label, extra) in fleets(&FastConfig::test_small(Variant::Sep), p0.clone(), p1.clone()) {
                let label = format!("{planner}/{label}");
                let service = FastService::new(Arc::clone(g), chaos_config(planner, extra));
                let handles: Vec<SessionHandle> = QUERY_MIX
                    .iter()
                    .map(|&i| service.submit(benchmark_query(i)))
                    .collect();
                let counts: Vec<u64> = handles
                    .into_iter()
                    .map(|h| h.wait().expect("chaos session completes").embeddings)
                    .collect();
                prop_assert_eq!(
                    &counts, baseline,
                    "{}: faulted counts diverge from the fault-free run", label
                );
                let mid = service.report();
                // A second wave after the snapshot exercises monotonicity.
                let again = service.submit(benchmark_query(1)).wait().expect("post-snapshot session");
                prop_assert_eq!(again.embeddings, baseline[1]);
                let report = service.shutdown();
                prop_assert_eq!(report.completed, QUERY_MIX.len() as u64 + 1);
                assert_fault_invariants(&mid, &report, &label);
            }
        }
    }

    /// A zero deadline budget sheds every session with the typed error —
    /// no hangs, no panics, no partial counts — regardless of the fault
    /// schedule underneath.
    #[test]
    fn zero_deadline_budget_sheds_typed(p0 in arb_plan(true)) {
        let (g, _) = workload();
        let mut config = chaos_config(
            ShardPlanner::Auto,
            fleets(&FastConfig::test_small(Variant::Sep), p0.clone(), p0)
                .remove(2)
                .1,
        );
        config.deadline = Some(Duration::ZERO);
        let service = FastService::new(Arc::clone(g), config);
        for &i in &QUERY_MIX {
            let err = service.submit(benchmark_query(i)).wait().unwrap_err();
            prop_assert_eq!(err, ServeError::DeadlineExceeded);
        }
        let report = service.shutdown();
        prop_assert_eq!(report.deadline_misses, QUERY_MIX.len() as u64);
        prop_assert_eq!(report.completed, 0);
        prop_assert_eq!(report.failed, 0, "shed by policy, not broken");
        prop_assert!(report.is_finite());
    }

    /// A fleet that is dead on arrival: with the CPU fallback the service
    /// degrades and still answers bit-exact (accounting the degraded
    /// wall); without it every session sheds `Degraded` — typed, not hung.
    #[test]
    fn dead_on_arrival_fleet_degrades_or_sheds(seed in any::<u64>(), fallback in any::<bool>()) {
        let (g, baseline) = workload();
        let spec = FastConfig::test_small(Variant::Sep).spec.clone();
        let dead = vec![
            faulty(DeviceKind::Fpga(spec.clone()), FaultPlan::dies_at(seed, 0)),
            faulty(DeviceKind::Fpga(spec), FaultPlan::dies_at(seed ^ 1, 0)),
        ];
        let mut config = chaos_config(ShardPlanner::Auto, dead);
        config.fault.cpu_fallback = fallback;
        let service = FastService::new(Arc::clone(g), config);
        if fallback {
            let counts: Vec<u64> = QUERY_MIX
                .iter()
                .map(|&i| service.submit(benchmark_query(i)).wait().expect("degraded serve").embeddings)
                .collect();
            prop_assert_eq!(&counts, baseline, "degraded mode diverged");
            let report = service.shutdown();
            prop_assert_eq!(report.completed, QUERY_MIX.len() as u64);
            prop_assert_eq!(report.failed, 0);
            prop_assert!(report.degraded_sec > 0.0, "degraded wall is accounted");
            prop_assert_eq!(report.retries, report.devices.iter().map(|d| d.failures).sum::<u64>());
            prop_assert!(report.is_finite());
        } else {
            let err = service.submit(benchmark_query(0)).wait().unwrap_err();
            prop_assert_eq!(err, ServeError::Degraded);
            let report = service.shutdown();
            prop_assert_eq!(report.failed, 1);
            prop_assert!(report.is_finite());
        }
    }
}
