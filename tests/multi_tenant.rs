//! Multi-tenant service tests: weighted-fair admission under saturation,
//! snapshot-loaded tenants, per-tenant report slices, and epoch isolation.

use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::generators::random_labelled_graph;
use graph_core::{graph_fingerprint, save_snapshot, Label, QueryGraph};
use serve::{FastService, QueryReport, ServeConfig, TenantConfig, TenantId};
use std::sync::Arc;

fn config(workers: usize, max_in_flight: usize) -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 1,
        extra_devices: Vec::new(),
        workers,
        cache_capacity: 16,
        plan_cache_bytes: None,
        cst_cache_bytes: 16 << 20,
        max_in_flight,
        ..ServeConfig::default()
    }
}

fn triangle() -> QueryGraph {
    QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .unwrap()
}

/// Under saturation, a 1:3 quota split serves tenant B ~3 of every 4
/// completions. With one worker the deficit round-robin is deterministic,
/// so any post-ramp window of the completion sequence lands within ±20%
/// of B's 0.75 fair share.
#[test]
fn saturated_tenants_complete_in_quota_proportion() {
    let g = Arc::new(random_labelled_graph(60, 0.2, 2, 42));
    // One worker: completions happen in exactly the order the weighted
    // round-robin pops them.
    let service = FastService::new(Arc::clone(&g), config(1, 96));
    let b = service
        .add_tenant(
            Arc::clone(&g),
            TenantConfig {
                quota: 3,
                ..TenantConfig::default()
            },
        )
        .unwrap();

    // Enqueue 40 sessions per tenant, interleaved, far faster than one
    // worker can drain them: both lanes stay backlogged throughout.
    let mut handles = Vec::new();
    for _ in 0..40 {
        handles.push(service.submit(triangle()));
        handles.push(service.submit_for(b, triangle()).unwrap());
    }
    let mut reports: Vec<QueryReport> = handles
        .into_iter()
        .map(|h| h.wait().expect("session"))
        .collect();
    reports.sort_by_key(|r| r.completion_seq);

    // Skip the ramp (submissions racing the first pops), then measure a
    // 32-completion window.
    let window = &reports[8..40];
    let b_share = window.iter().filter(|r| r.tenant == b).count() as f64 / window.len() as f64;
    assert!(
        (0.6..=0.9).contains(&b_share),
        "tenant B fair share is 0.75 (quota 3 of 4); window gave {b_share}: {:?}",
        window.iter().map(|r| r.tenant).collect::<Vec<_>>()
    );

    // Per-tenant slices account for every session.
    let report = service.shutdown();
    assert_eq!(report.completed, 80);
    assert_eq!(report.tenants.len(), 2);
    let slice_a = &report.tenants[0];
    let slice_b = &report.tenants[1];
    assert_eq!(slice_a.tenant, TenantId::DEFAULT);
    assert_eq!((slice_a.quota, slice_b.quota), (1, 3));
    assert_eq!(slice_a.completed, 40);
    assert_eq!(slice_b.completed, 40);
    assert_eq!(
        slice_a.total_embeddings + slice_b.total_embeddings,
        report.total_embeddings
    );
    assert!(
        slice_b.cst_hit_rate > 0.0,
        "repeats hit B's tier-2 cache partition"
    );
    assert!(
        slice_b.cst_resident_bytes > 0,
        "B's cached artifacts occupy resident bytes"
    );
}

/// A tenant loaded from a binary snapshot serves identically to the tenant
/// the snapshot was taken from, and the loaded graph fingerprints equal.
#[test]
fn snapshot_loaded_tenant_serves_identically() {
    let g = random_labelled_graph(60, 0.25, 2, 7);
    let path = std::env::temp_dir().join(format!(
        "fast-sm-tenant-snapshot-{}.bin",
        std::process::id()
    ));
    save_snapshot(&g, &path).expect("snapshot write");

    let fingerprint = graph_fingerprint(&g);
    let service = FastService::new(g, config(2, 8));
    let restored = service
        .load_tenant_snapshot(&path, TenantConfig::default())
        .expect("snapshot load");
    std::fs::remove_file(&path).ok();

    assert_eq!(
        graph_fingerprint(&service.tenant_graph(restored).unwrap()),
        fingerprint,
        "snapshot round-trip must preserve the graph bit-for-bit"
    );
    let original = service.submit(triangle()).wait().unwrap();
    let loaded = service
        .submit_for(restored, triangle())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(original.embeddings, loaded.embeddings);
    assert!(original.embeddings > 0, "degenerate workload");
    service.shutdown();
}

/// A missing or corrupt snapshot is a typed error, not a panic.
#[test]
fn bad_snapshots_are_typed_errors() {
    let g = random_labelled_graph(20, 0.2, 1, 9);
    let service = FastService::new(g, config(1, 4));
    let missing = std::env::temp_dir().join("fast-sm-no-such-snapshot.bin");
    let err = service
        .load_tenant_snapshot(&missing, TenantConfig::default())
        .unwrap_err();
    assert!(matches!(err, serve::ServeError::Snapshot(_)), "{err}");

    let corrupt = std::env::temp_dir().join(format!(
        "fast-sm-corrupt-snapshot-{}.bin",
        std::process::id()
    ));
    std::fs::write(&corrupt, b"not a snapshot at all").unwrap();
    let err = service
        .load_tenant_snapshot(&corrupt, TenantConfig::default())
        .unwrap_err();
    std::fs::remove_file(&corrupt).ok();
    assert!(matches!(err, serve::ServeError::Snapshot(_)), "{err}");
    service.shutdown();
}

/// Epochs are per tenant: bumping one tenant's epoch invalidates its
/// cached plans without touching another tenant's warm cache.
#[test]
fn epoch_bumps_are_tenant_scoped() {
    let g = Arc::new(random_labelled_graph(60, 0.2, 2, 11));
    let service = FastService::new(Arc::clone(&g), config(2, 8));
    let b = service
        .add_tenant(Arc::clone(&g), TenantConfig::default())
        .unwrap();

    // Warm both tenants' cache partitions.
    for _ in 0..2 {
        service.submit(triangle()).wait().unwrap();
        service.submit_for(b, triangle()).unwrap().wait().unwrap();
    }
    assert_eq!(service.bump_epoch(TenantId::DEFAULT).unwrap(), 1);

    let a_after = service.submit(triangle()).wait().unwrap();
    let b_after = service.submit_for(b, triangle()).unwrap().wait().unwrap();
    assert!(!a_after.cache_hit, "bumped tenant must miss");
    assert!(b_after.cache_hit, "other tenant's plans stay warm");
    assert_eq!(a_after.embeddings, b_after.embeddings);

    let report = service.shutdown();
    assert_eq!(report.tenants[0].epoch, 1);
    assert_eq!(report.tenants[1].epoch, 0);
}
