//! End-to-end integration: every matcher in the workspace must agree on
//! every benchmark query over LDBC-like data.

use fast::{run_fast, FastConfig, Variant};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{all_benchmark_queries, benchmark_query};
use join_baselines::{run_join_baseline, DeviceSpec, JoinBaseline};
use matching::{run_baseline, run_baseline_parallel, Baseline, Outcome, RunLimits};

fn tiny_ldbc() -> graph_core::Graph {
    generate_ldbc(&LdbcParams::with_scale_factor(0.05), 1234)
}

#[test]
fn all_engines_agree_on_all_benchmark_queries() {
    let g = tiny_ldbc();
    let limits = RunLimits::unlimited();
    let device = DeviceSpec::default();
    for (qi, q) in all_benchmark_queries().iter().enumerate() {
        let expected = run_fast(q, &g, &FastConfig::default())
            .expect("benchmark query fits kernel")
            .embeddings;
        for b in Baseline::ALL {
            let r = run_baseline(b, q, &g, &limits);
            assert_eq!(r.outcome, Outcome::Completed, "{} q{qi}", b.name());
            assert_eq!(r.embeddings, expected, "{} q{qi}", b.name());
        }
        for jb in JoinBaseline::ALL {
            let r = run_join_baseline(jb, q, &g, &device, &limits);
            assert_eq!(r.outcome, Outcome::Completed, "{} q{qi}", jb.name());
            assert_eq!(r.embeddings, expected, "{} q{qi}", jb.name());
        }
        let par = run_baseline_parallel(Baseline::Ceci, q, &g, &limits, 8);
        assert_eq!(par.embeddings, expected, "CECI-8 q{qi}");
    }
}

#[test]
fn all_variants_agree_on_dense_query() {
    let g = tiny_ldbc();
    let q = benchmark_query(8);
    let counts: Vec<u64> = Variant::ALL
        .iter()
        .map(|&v| {
            run_fast(&q, &g, &FastConfig::test_small(v))
                .expect("fits")
                .embeddings
        })
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "variants disagree: {counts:?}"
    );
}

#[test]
fn variant_cycle_ladder_holds_end_to_end() {
    let g = tiny_ldbc();
    for qi in [1usize, 2, 6, 8] {
        let q = benchmark_query(qi);
        let cycles: Vec<(Variant, u64)> = [Variant::Dram, Variant::Basic, Variant::Task, Variant::Sep]
            .iter()
            .map(|&v| {
                (
                    v,
                    run_fast(&q, &g, &FastConfig::for_variant(v))
                        .expect("fits")
                        .kernel_cycles,
                )
            })
            .collect();
        for w in cycles.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "q{qi}: {} ({}) < {} ({})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }
}

#[test]
fn fast_reports_are_internally_consistent() {
    let g = tiny_ldbc();
    let q = benchmark_query(2);
    let r = run_fast(&q, &g, &FastConfig::test_small(Variant::Share)).expect("fits");
    // Workload booked must cover both sides.
    assert!(r.workload_cpu >= 0.0 && r.workload_fpga >= 0.0);
    // Counts only come from FPGA partitions.
    if r.fpga_partitions == 0 {
        assert_eq!(r.counts.n, 0);
    }
    // Modelled total covers its components.
    assert!(r.modeled_total_sec() >= r.modeled_build_sec);
    assert!(r.modeled_total_sec() >= r.kernel_time_sec);
    assert_eq!(r.forced, 0, "partitions should never be force-emitted");
}

#[test]
fn timeout_produces_inf_marker() {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.3), 5);
    let q = benchmark_query(1);
    let limits = RunLimits {
        timeout: Some(std::time::Duration::from_micros(1)),
        ..RunLimits::unlimited()
    };
    let r = run_baseline(Baseline::Cfl, &q, &g, &limits);
    assert_eq!(r.outcome, Outcome::Timeout);
    assert_eq!(r.outcome.table_marker(), "INF");
    assert!(r.modeled_total_sec().is_infinite());
}

#[test]
fn memory_caps_produce_oom_markers() {
    let g = generate_ldbc(&LdbcParams::with_scale_factor(0.2), 5);
    let q = benchmark_query(6);
    // CFL's adjacency matrix blows a small cap.
    let limits = RunLimits {
        memory_cap: Some(1 << 20),
        ..RunLimits::unlimited()
    };
    let r = run_baseline(Baseline::Cfl, &q, &g, &limits);
    assert_eq!(r.outcome, Outcome::OutOfMemory);
    // The GPU join with a tiny device OOMs too.
    let device = DeviceSpec { memory_bytes: 1 << 10 };
    let r = run_join_baseline(JoinBaseline::Gsi, &q, &g, &device, &RunLimits::unlimited());
    assert_eq!(r.outcome, Outcome::OutOfMemory);
}
