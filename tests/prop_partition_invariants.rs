//! Property-based tests of the CST partitioner (paper Algorithm 2,
//! Example 3): partitions are disjoint, complete, and threshold-respecting
//! for arbitrary graphs, queries, and thresholds.

use cst::{build_cst, count_embeddings, fits, partition_cst, PartitionConfig};
use graph_core::generators::random_labelled_graph;
use graph_core::{BfsTree, Label, MatchingOrder, QueryGraph, QueryVertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_query() -> impl Strategy<Value = QueryGraph> {
    (3usize..=5, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<Label> = (0..n).map(|_| Label::new(rng.gen_range(0..2))).collect();
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((rng.gen_range(0..i), i));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(0.35) {
                    edges.push((a, b));
                }
            }
        }
        QueryGraph::new(labels, &edges).expect("connected by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The union of partition embedding counts equals the whole-CST count —
    /// no results lost, none duplicated (Example 3).
    #[test]
    fn partition_union_is_exact(
        q in arb_query(),
        graph_seed in 0u64..400,
        size_divisor in 2usize..10,
        fixed_k in proptest::option::of(2u32..6),
    ) {
        let g = random_labelled_graph(40, 0.15, 2, graph_seed);
        let root = QueryVertexId::new(0);
        let tree = BfsTree::new(&q, root);
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs");
        let cst = build_cst(&q, &g, &tree);
        let whole = count_embeddings(&cst, &q, &order);

        let config = PartitionConfig {
            delta_s: cst.size_bytes() / size_divisor + 64,
            delta_d: u32::MAX,
            footprint_budget: None,
            fixed_k,
            max_partitions: 1 << 16,
        };
        let (parts, stats) = partition_cst(&cst, &order, &config);
        let sum: u64 = parts.iter().map(|p| count_embeddings(p, &q, &order)).sum();
        prop_assert_eq!(sum, whole, "divisor {} k {:?}", size_divisor, fixed_k);
        prop_assert_eq!(stats.forced, 0);
    }

    /// Every emitted partition satisfies the thresholds and is structurally
    /// valid (symmetric candidate adjacency, sorted lists).
    #[test]
    fn partitions_fit_and_validate(
        q in arb_query(),
        graph_seed in 0u64..400,
        size_divisor in 2usize..8,
    ) {
        let g = random_labelled_graph(40, 0.15, 2, graph_seed);
        let root = QueryVertexId::new(0);
        let tree = BfsTree::new(&q, root);
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs");
        let cst = build_cst(&q, &g, &tree);

        let config = PartitionConfig {
            delta_s: cst.size_bytes() / size_divisor + 64,
            delta_d: u32::MAX,
            footprint_budget: None,
            fixed_k: None,
            max_partitions: 1 << 16,
        };
        let (parts, _) = partition_cst(&cst, &order, &config);
        for p in &parts {
            prop_assert!(fits(p, &config));
            prop_assert!(p.validate(&q).is_ok());
            prop_assert!(!p.any_empty());
        }
    }

    /// Degree thresholds are honoured: partitioning under δ_D caps the
    /// maximum candidate adjacency list.
    #[test]
    fn degree_threshold_is_enforced(
        q in arb_query(),
        graph_seed in 0u64..200,
    ) {
        let g = random_labelled_graph(50, 0.2, 2, graph_seed);
        let root = QueryVertexId::new(0);
        let tree = BfsTree::new(&q, root);
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs");
        let cst = build_cst(&q, &g, &tree);
        let d = cst.max_candidate_degree();
        prop_assume!(d >= 4);

        let config = PartitionConfig {
            delta_s: usize::MAX,
            delta_d: d / 2,
            footprint_budget: None,
            fixed_k: None,
            max_partitions: 1 << 16,
        };
        let (parts, stats) = partition_cst(&cst, &order, &config);
        let whole = count_embeddings(&cst, &q, &order);
        let sum: u64 = parts.iter().map(|p| count_embeddings(p, &q, &order)).sum();
        prop_assert_eq!(sum, whole);
        if stats.forced == 0 {
            for p in &parts {
                prop_assert!(p.max_candidate_degree() <= d / 2);
            }
        }
    }
}
