//! Tier-2 shard-CST cache harness: the byte-budget/LRU/rejection
//! semantics of `serve::SizedCache` proved against a reference model over
//! randomized operation sequences, plus the service-level exactly-once
//! and epoch-isolation guarantees of the tier-2 cache.

use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::generators::random_labelled_graph;
use graph_core::{Label, QueryGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{CacheStats, FastService, ServeConfig, SizedCache, TenantConfig, TenantId};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Model-based property tests of the size-aware LRU both tiers share.
// ---------------------------------------------------------------------------

/// Reference model of `SizedCache`: a recency list (front = least recently
/// used) with the same budget/rejection/replacement rules, written the
/// obvious O(n) way so divergence pinpoints a real cache bug.
struct Model {
    budget: usize,
    /// `(key, weight, value)`, ordered least- to most-recently used.
    list: Vec<(u8, usize, u64)>,
    used: usize,
    stats: CacheStats,
}

impl Model {
    fn new(budget: usize) -> Self {
        Model {
            budget,
            list: Vec::new(),
            used: 0,
            stats: CacheStats::default(),
        }
    }

    fn get(&mut self, key: u8) -> Option<u64> {
        match self.list.iter().position(|e| e.0 == key) {
            Some(pos) => {
                let entry = self.list.remove(pos);
                self.list.push(entry);
                self.stats.hits += 1;
                Some(entry.2)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u8, value: u64, weight: usize) {
        if self.budget == 0 {
            return;
        }
        if weight > self.budget {
            self.stats.rejected += 1;
            return;
        }
        if let Some(pos) = self.list.iter().position(|e| e.0 == key) {
            let old = self.list.remove(pos);
            self.used -= old.1;
        }
        while self.used + weight > self.budget {
            let victim = self.list.remove(0);
            self.used -= victim.1;
            self.stats.evictions += 1;
        }
        self.list.push((key, weight, value));
        self.used += weight;
        self.stats.insertions += 1;
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert under a small key space (collisions exercise replacement);
    /// weights range past the budget so rejection is exercised too.
    Insert(u8, usize),
    Get(u8),
}

/// Seeded random operation sequence over 12 keys with weights up to 64 —
/// past any budget in range, so rejection is exercised alongside
/// eviction, replacement, and recency refresh.
fn random_ops(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.5) {
                Op::Insert(rng.gen_range(0..12), rng.gen_range(0..=64))
            } else {
                Op::Get(rng.gen_range(0..12))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Over any operation sequence the cache agrees with the reference
    /// model on every lookup result, the resident weight, the entry
    /// count, and every counter — and the resident weight **never**
    /// exceeds the budget (the tier-2 memory guarantee).
    #[test]
    fn sized_cache_matches_reference_model(
        budget in 0usize..=48,
        seed in any::<u64>(),
        len in 1usize..150,
    ) {
        let ops = random_ops(seed, len);
        let mut cache: SizedCache<u8, u64> = SizedCache::new(budget);
        let mut model = Model::new(budget);
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(key, weight) => {
                    // A fresh value per insert so a stale survivor would
                    // surface as a wrong lookup result, not a silent pass.
                    let value = i as u64;
                    cache.insert(key, value, weight);
                    model.insert(key, value, weight);
                }
                Op::Get(key) => {
                    prop_assert_eq!(
                        cache.get(&key), model.get(key),
                        "op {}: lookup diverged from the model", i
                    );
                }
            }
            prop_assert!(
                cache.used() <= budget,
                "op {}: resident weight {} exceeds budget {}", i, cache.used(), budget
            );
            prop_assert_eq!(cache.used(), model.used, "op {}: resident weight", i);
            prop_assert_eq!(cache.len(), model.list.len(), "op {}: entry count", i);
            prop_assert_eq!(cache.stats(), model.stats, "op {}: counters", i);
        }
    }

    /// LRU order: after inserting unit-weight entries filling the budget
    /// and touching a chosen subset, one more insert evicts exactly the
    /// least-recently-used untouched entry.
    #[test]
    fn unit_weight_eviction_removes_the_lru_entry(
        seed in any::<u64>(),
        touches in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let touched: Vec<u8> = (0..touches).map(|_| rng.gen_range(0..4)).collect();
        let mut cache: SizedCache<u8, u64> = SizedCache::new(4);
        for k in 0u8..4 {
            cache.insert(k, u64::from(k), 1);
        }
        for &k in &touched {
            prop_assert!(cache.get(&k).is_some());
        }
        // Track recency directly: front of the list is the next victim.
        let mut recency: Vec<u8> = (0u8..4).collect();
        for &k in &touched {
            recency.retain(|&x| x != k);
            recency.push(k);
        }
        let expected_victim = recency[0];
        cache.insert(9, 99, 1);
        prop_assert!(cache.get(&9).is_some(), "new entry resident");
        prop_assert!(
            cache.get(&expected_victim).is_none(),
            "victim must be the LRU entry {}", expected_victim
        );
        prop_assert_eq!(cache.stats().evictions, 1);
    }

    /// An entry heavier than the whole budget is rejected without evicting
    /// anything, no matter what working set precedes it.
    #[test]
    fn oversized_insert_never_disturbs_the_working_set(
        seed in any::<u64>(),
        entries in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<usize> = (0..entries).map(|_| rng.gen_range(1..=8)).collect();
        let budget: usize = 64;
        let mut cache: SizedCache<u8, u64> = SizedCache::new(budget);
        for (i, &w) in weights.iter().enumerate() {
            cache.insert(i as u8, i as u64, w);
        }
        let (len, used) = (cache.len(), cache.used());
        cache.insert(200, 1, budget + 1);
        prop_assert_eq!(cache.len(), len, "rejection must not evict");
        prop_assert_eq!(cache.used(), used, "rejection must not change residency");
        prop_assert_eq!(cache.stats().rejected, 1);
        prop_assert_eq!(cache.stats().evictions, 0);
        prop_assert!(cache.get(&200).is_none());
        for i in 0..weights.len() {
            prop_assert_eq!(cache.get(&(i as u8)), Some(i as u64), "survivor {}", i);
        }
    }
}

// ---------------------------------------------------------------------------
// Service-level tier-2 guarantees: exactly-once builds and epoch isolation.
// ---------------------------------------------------------------------------

fn triangle() -> QueryGraph {
    QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .unwrap()
}

fn config(workers: usize, cst_bytes: usize) -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 2,
        extra_devices: Vec::new(),
        workers,
        cache_capacity: 16,
        plan_cache_bytes: None,
        cst_cache_bytes: cst_bytes,
        max_in_flight: 8,
        ..ServeConfig::default()
    }
}

/// N identical concurrent cold sessions build the shard CSTs exactly once:
/// the single-flight gate is held through the build and the artifact is
/// published before release, so every waiter wakes into a tier-2 hit.
#[test]
fn concurrent_identical_cold_sessions_build_exactly_once() {
    let g = Arc::new(random_labelled_graph(60, 0.2, 2, 42));
    let service = FastService::new(Arc::clone(&g), config(4, 16 << 20));
    let handles: Vec<_> = (0..6).map(|_| service.submit(triangle())).collect();
    let counts: Vec<u64> = handles
        .into_iter()
        .map(|h| h.wait().expect("session").embeddings)
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "identical sessions disagree: {counts:?}"
    );
    let report = service.shutdown();
    assert_eq!(report.completed, 6);
    assert_eq!(
        report.cst_cache.insertions, 1,
        "six identical sessions must build exactly once"
    );
    assert_eq!(report.cst_cache.misses, 1, "only the builder misses");
    assert_eq!(report.cst_cache.hits, 5, "every waiter wakes into a hit");
    assert!(report.cst_resident_bytes > 0);
}

/// `bump_epoch` drops tier-2 artifacts for that tenant **only**: the
/// bumped tenant rebuilds, the other tenant stays fully warm.
#[test]
fn epoch_bump_drops_tier2_for_that_tenant_only() {
    let g = Arc::new(random_labelled_graph(60, 0.2, 2, 11));
    let service = FastService::new(Arc::clone(&g), config(2, 16 << 20));
    let b = service
        .add_tenant(Arc::clone(&g), TenantConfig::default())
        .unwrap();

    // Warm both tenants' tier-2 partitions and verify the warmth.
    for _ in 0..2 {
        service.submit(triangle()).wait().unwrap();
        service.submit_for(b, triangle()).unwrap().wait().unwrap();
    }
    assert_eq!(service.bump_epoch(TenantId::DEFAULT).unwrap(), 1);

    let a_after = service.submit(triangle()).wait().unwrap();
    let b_after = service.submit_for(b, triangle()).unwrap().wait().unwrap();
    assert!(
        !a_after.cst_cache_hit,
        "bumped tenant must rebuild its artifacts"
    );
    assert!(
        a_after.build_time > std::time::Duration::ZERO,
        "the rebuild must pay real build wall"
    );
    assert!(
        b_after.cst_cache_hit,
        "the other tenant's artifacts must stay warm"
    );
    assert_eq!(b_after.build_time, std::time::Duration::ZERO);
    assert_eq!(a_after.embeddings, b_after.embeddings);

    let report = service.shutdown();
    assert_eq!(report.tenants[0].epoch, 1);
    assert!(
        report.tenants[0].cst_resident_bytes > 0,
        "the rebuilt artifact is re-cached under the new epoch"
    );
    assert!(report.tenants[1].cst_resident_bytes > 0);
}

/// A budget too small for even one artifact rejects every insert (counted,
/// working set untouched), keeps zero resident bytes, and still serves
/// bit-identical results — warm sessions just fall back to plan seeding.
#[test]
fn tiny_budget_rejects_artifacts_but_serves_correctly() {
    let g = Arc::new(random_labelled_graph(60, 0.2, 2, 7));
    let service = FastService::new(Arc::clone(&g), config(1, 8));
    let cold = service.submit(triangle()).wait().unwrap();
    let warm = service.submit(triangle()).wait().unwrap();
    assert!(!cold.cst_cache_hit && !warm.cst_cache_hit);
    assert!(warm.cache_hit, "the plan tier still amortises the probe");
    assert_eq!(cold.embeddings, warm.embeddings);
    let report = service.shutdown();
    assert_eq!(report.cst_cache.insertions, 0);
    assert_eq!(report.cst_cache.rejected, 2, "both builds outweigh the budget");
    assert_eq!(report.cst_resident_bytes, 0);
}
