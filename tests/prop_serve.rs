//! Property-based tests of the serving subsystem (`serve`): cache-hit
//! serves are bit-identical to cold runs for every planner, and concurrent
//! serving is deterministic in its per-query results regardless of device
//! count, worker count, and admission interleaving.

use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::generators::random_labelled_graph;
use graph_core::{Graph, Label, QueryGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{FastService, ServeConfig};
use std::sync::Arc;

/// Seeded random connected query (tree skeleton + extra edges).
fn random_query(n: usize, seed: u64) -> QueryGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    let labels: Vec<Label> = (0..n).map(|_| Label::new(rng.gen_range(0..2))).collect();
    let mut edges = Vec::new();
    for i in 1..n {
        edges.push((rng.gen_range(0..i), i));
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(0.3) {
                edges.push((a, b));
            }
        }
    }
    QueryGraph::new(labels, &edges).expect("connected by construction")
}

fn arb_query() -> impl Strategy<Value = QueryGraph> {
    (3usize..=5, any::<u64>()).prop_map(|(n, seed)| random_query(n, seed))
}

fn service_config(
    planner: ShardPlanner,
    devices: usize,
    workers: usize,
    cst_bytes: usize,
) -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = planner;
    ServeConfig {
        fast,
        devices,
        extra_devices: Vec::new(),
        workers,
        cache_capacity: 16,
        plan_cache_bytes: None,
        cst_cache_bytes: cst_bytes,
        max_in_flight: 8,
        ..ServeConfig::default()
    }
}

/// Serves `q` twice on a fresh service (cold, then warm) with the given
/// tier-2 byte budget and returns the two reports.
fn cold_then_hit(
    g: &Arc<Graph>,
    q: &QueryGraph,
    planner: ShardPlanner,
    cst_bytes: usize,
) -> (serve::QueryReport, serve::QueryReport) {
    let service = FastService::new(Arc::clone(g), service_config(planner, 2, 1, cst_bytes));
    let cold = service.submit(q.clone()).wait().expect("cold run");
    let hit = service.submit(q.clone()).wait().expect("warm run");
    let report = service.shutdown();
    assert_eq!(report.completed, 2);
    (cold, hit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A warm serve is bit-identical to the cold run for every planner, on
    /// **both** warm paths: tier 2 disabled (the stored plan seeds the
    /// rebuild) and tier 2 enabled (the cached shard CSTs replay with zero
    /// build work). Three-way differential: cold vs seeded vs tier-2 hit.
    #[test]
    fn warm_serves_are_bit_identical_to_cold_for_every_planner(
        q in arb_query(),
        graph_seed in 0u64..200,
    ) {
        let g = Arc::new(random_labelled_graph(45, 0.18, 2, graph_seed));
        for planner in [
            ShardPlanner::Contiguous,
            ShardPlanner::WorkloadBalanced,
            ShardPlanner::OverlapAware,
            ShardPlanner::Auto,
        ] {
            // Tier 2 off: the warm serve replays the cached plan.
            let (cold, seeded) = cold_then_hit(&g, &q, planner, 0);
            // Tier 2 on: the warm serve replays the cached artifact.
            let (cold2, warm) = cold_then_hit(&g, &q, planner, 64 << 20);
            prop_assert!(!cold.cache_hit, "{planner}: first run must miss");
            prop_assert!(
                seeded.cache_hit && !seeded.cst_cache_hit,
                "{planner}: tier-2-off warm run must be a plan hit"
            );
            prop_assert!(
                warm.cst_cache_hit,
                "{planner}: tier-2-on warm run must be an artifact hit"
            );
            for (label, r) in [("seeded", &seeded), ("cold+capture", &cold2), ("tier-2", &warm)] {
                prop_assert_eq!(
                    cold.embeddings, r.embeddings,
                    "{} changed the count on the {} serve", planner, label
                );
                prop_assert_eq!(
                    cold.partitions, r.partitions,
                    "{} changed the partition sequence on the {} serve", planner, label
                );
                prop_assert_eq!(
                    cold.pipeline_shards, r.pipeline_shards,
                    "{} changed the shard decomposition on the {} serve", planner, label
                );
                prop_assert_eq!(
                    cold.kernel_cycles, r.kernel_cycles,
                    "{} changed the modelled kernel work on the {} serve", planner, label
                );
            }
            // Cached plans retain their probe, so a tier-2-off warm session
            // builds every shard from the memoised candidate space — the
            // global top-down scan is skipped entirely. (Contiguous plans
            // never probe; degenerate ≤1-root plans short-circuit planning.)
            if planner != ShardPlanner::Contiguous && seeded.pipeline_shards > 1 {
                prop_assert_eq!(
                    seeded.seeded_shards, seeded.pipeline_shards,
                    "{} warm session did not seed from the cached probe", planner
                );
            }
            // A tier-2 hit is pure dispatch + kernel: no top-down scan, no
            // seeding, and exactly zero build/partition wall.
            prop_assert_eq!(
                warm.build_time, std::time::Duration::ZERO,
                "{} tier-2 hit must build nothing", planner
            );
            prop_assert_eq!(
                warm.topdown_entries, 0usize,
                "{} tier-2 hit must not scan the graph top-down", planner
            );
            prop_assert_eq!(
                warm.seeded_shards, 0usize,
                "{} tier-2 hit must not seed a rebuild", planner
            );
        }
    }

    /// Concurrent sessions over a fixed seeded query set produce a
    /// deterministic per-query result set regardless of device count,
    /// worker count, and interleaving.
    #[test]
    fn concurrent_serving_is_deterministic_across_fleets(
        graph_seed in 0u64..100,
        query_seed in any::<u64>(),
    ) {
        let g = Arc::new(random_labelled_graph(50, 0.18, 2, graph_seed));
        // A fixed, seeded query workload (with repeats).
        let queries: Vec<QueryGraph> = {
            let mut rng = StdRng::seed_from_u64(query_seed);
            use rand::Rng;
            let distinct: Vec<QueryGraph> = (0..3)
                .map(|i| random_query(3 + i % 3, query_seed.wrapping_add(i as u64)))
                .collect();
            (0..8)
                .map(|_| distinct[rng.gen_range(0..distinct.len())].clone())
                .collect()
        };

        let mut reference: Option<Vec<u64>> = None;
        for (devices, workers) in [(1usize, 1usize), (2, 4), (4, 2)] {
            let service = FastService::new(
                Arc::clone(&g),
                service_config(ShardPlanner::Auto, devices, workers, 64 << 20),
            );
            let handles: Vec<_> = queries
                .iter()
                .map(|q| service.submit(q.clone()))
                .collect();
            let counts: Vec<u64> = handles
                .into_iter()
                .map(|h| h.wait().expect("session").embeddings)
                .collect();
            let report = service.shutdown();
            prop_assert_eq!(report.completed as usize, queries.len());
            match &reference {
                None => reference = Some(counts),
                Some(r) => prop_assert_eq!(
                    r,
                    &counts,
                    "devices={} workers={} changed per-query results",
                    devices,
                    workers
                ),
            }
        }
    }
}

/// The serve path agrees with the one-shot `run_fast` path on the final
/// count: the decoupled prepare/execute phases must not change the answer.
#[test]
fn serve_agrees_with_run_fast() {
    let g = random_labelled_graph(60, 0.2, 2, 77);
    let q = QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .unwrap();
    let oneshot = fast::run_fast(&q, &g, &FastConfig::test_small(Variant::Sep))
        .expect("one-shot run");
    let service = FastService::new(g, service_config(ShardPlanner::Auto, 2, 2, 64 << 20));
    let served = service.submit(q).wait().expect("served run");
    assert_eq!(served.embeddings, oneshot.embeddings);
    service.shutdown();
}

/// Backpressure bound: with `max_in_flight = 2`, the service never admits
/// more than two concurrent sessions even under a burst of blocking
/// submitters.
#[test]
fn in_flight_depth_is_bounded() {
    let g = random_labelled_graph(50, 0.25, 2, 99);
    let q = QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .unwrap();
    let mut config = service_config(ShardPlanner::Auto, 2, 4, 64 << 20);
    config.max_in_flight = 2;
    let service = FastService::new(g, config);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let service = &service;
            let q = q.clone();
            scope.spawn(move || {
                for _ in 0..3 {
                    service.submit(q.clone()).wait().expect("session");
                }
            });
        }
    });
    let report = service.shutdown();
    assert_eq!(report.completed, 12);
    assert!(
        report.max_in_flight <= 2,
        "admission exceeded the bound: {}",
        report.max_in_flight
    );
}
