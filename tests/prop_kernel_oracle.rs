//! Property-based tests: the emulated kernel is an exact subgraph matcher.
//!
//! For random labelled graphs, random small queries, random matching orders,
//! and random `N_o`, the kernel must produce exactly the embeddings the
//! CST-enumeration oracle (and VF2) produce, and the BRAM buffer bound of
//! Section VI-B must hold.

use cst::build_cst;
use fast::{run_kernel, CollectMode, KernelPlan};
use graph_core::generators::random_labelled_graph;
use graph_core::{
    random_connected_order, BfsTree, Label, MatchingOrder, QueryGraph, QueryVertexId,
};
use matching::vf2_count;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random connected query of 2-5 vertices over ≤3 labels.
fn arb_query() -> impl Strategy<Value = QueryGraph> {
    (2usize..=5, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<Label> = (0..n).map(|_| Label::new(rng.gen_range(0..3))).collect();
        // Random spanning tree + random extra edges keeps it connected.
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((rng.gen_range(0..i), i));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(0.3) {
                    edges.push((a, b));
                }
            }
        }
        QueryGraph::new(labels, &edges).expect("construction keeps connectivity")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernel_matches_vf2_on_random_inputs(
        q in arb_query(),
        graph_seed in 0u64..1_000,
        order_seed in 0u64..1_000,
        no in 1u32..64,
    ) {
        let g = random_labelled_graph(30, 0.2, 3, graph_seed);
        let expected = vf2_count(&q, &g);

        let root = QueryVertexId::new(0);
        let tree = BfsTree::new(&q, root);
        let mut rng = StdRng::seed_from_u64(order_seed);
        let order = random_connected_order(&q, root, &mut rng);

        let cst = build_cst(&q, &g, &tree);
        let plan = KernelPlan::new(&q, &order, &tree).expect("small query");
        let out = run_kernel(&cst, &plan, no, CollectMode::CountOnly);

        prop_assert_eq!(out.embeddings, expected);
        // Section VI-B: no buffer level ever exceeds N_o.
        for (lvl, &hw) in out.buffer_high_water.iter().enumerate() {
            prop_assert!(hw <= no as usize, "level {} high-water {} > No {}", lvl + 1, hw, no);
        }
    }

    #[test]
    fn kernel_counts_are_order_of_rounds_invariant(
        q in arb_query(),
        graph_seed in 0u64..500,
    ) {
        let g = random_labelled_graph(25, 0.25, 3, graph_seed);
        let root = QueryVertexId::new(0);
        let tree = BfsTree::new(&q, root);
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs order");
        let cst = build_cst(&q, &g, &tree);
        let plan = KernelPlan::new(&q, &order, &tree).expect("small query");

        // N and M are search-space properties: independent of N_o.
        let a = run_kernel(&cst, &plan, 1, CollectMode::CountOnly);
        let b = run_kernel(&cst, &plan, 1024, CollectMode::CountOnly);
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.embeddings, b.embeddings);
        prop_assert!(a.rounds >= b.rounds);
    }

    #[test]
    fn collected_embeddings_are_genuine(
        q in arb_query(),
        graph_seed in 0u64..500,
    ) {
        let g = random_labelled_graph(25, 0.25, 3, graph_seed);
        let root = QueryVertexId::new(0);
        let tree = BfsTree::new(&q, root);
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs order");
        let cst = build_cst(&q, &g, &tree);
        let plan = KernelPlan::new(&q, &order, &tree).expect("small query");
        let out = run_kernel(&cst, &plan, 16, CollectMode::Collect(64));

        for emb in &out.collected {
            // Labels match.
            for u in q.vertices() {
                prop_assert_eq!(g.label(emb[u.index()]), q.label(u));
            }
            // Injectivity.
            for a in q.vertices() {
                for b in q.vertices() {
                    if a != b {
                        prop_assert_ne!(emb[a.index()], emb[b.index()]);
                    }
                }
            }
            // Every query edge is a data edge.
            for &(a, b) in q.edges() {
                prop_assert!(g.has_edge(emb[a.index()], emb[b.index()]));
            }
        }
    }
}
