//! Property-based tests of probe-seeded shard builds: a shard build that
//! starts from the planner probe's memoised candidate space
//! (`cst::build_cst_seeded`, `RootProfile::seed_chunks`) must be
//! **bit-identical** to the cold top-down build — same CSTs, same partition
//! sequence, same embedding counts — for every planner and thread count;
//! and a probe whose provenance does not match the pipeline's freshly
//! derived inputs must be discarded and recomputed, never trusted.

use cst::{
    build_cst_from_roots, build_cst_seeded, build_cst_sharded, count_embeddings,
    for_each_shard_cst_planned, plan_pipeline_shards, root_candidates, CstOptions,
    PipelineOptions, ShardPlanner,
};
use fast::{run_fast, FastConfig, Variant};
use graph_core::generators::random_labelled_graph;
use graph_core::{BfsTree, Label, MatchingOrder, QueryGraph, QueryVertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_query() -> impl Strategy<Value = QueryGraph> {
    (3usize..=5, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<Label> = (0..n).map(|_| Label::new(rng.gen_range(0..2))).collect();
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((rng.gen_range(0..i), i));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                // Denser than the pipeline tests: non-tree edges are where a
                // seeded build could go wrong if it trusted the probe's
                // stride-sampled edge estimates instead of re-materialising.
                if rng.gen_bool(0.4) {
                    edges.push((a, b));
                }
            }
        }
        QueryGraph::new(labels, &edges).expect("connected by construction")
    })
}

/// Structural equality of two CSTs: same candidate sets and same adjacency
/// lists for every directed query edge.
fn csts_identical(a: &cst::Cst, b: &cst::Cst) -> bool {
    if a.query_vertex_count() != b.query_vertex_count() {
        return false;
    }
    for u in 0..a.query_vertex_count() {
        let qu = QueryVertexId::from_index(u);
        if a.candidates(qu) != b.candidates(qu) {
            return false;
        }
    }
    let edges_a: Vec<_> = a.directed_edges().collect();
    let edges_b: Vec<_> = b.directed_edges().collect();
    if edges_a != edges_b {
        return false;
    }
    for &(x, y) in &edges_a {
        let aa = a.adjacency(x, y);
        let bb = b.adjacency(x, y);
        if aa.offsets != bb.offsets || aa.targets != bb.targets {
            return false;
        }
    }
    true
}

fn options(planner: ShardPlanner, threads: usize, shards: usize, seed: bool) -> PipelineOptions {
    PipelineOptions {
        threads,
        shards: Some(shards),
        planner,
        cst: CstOptions::default(),
        seed_builds: seed,
        ..PipelineOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Seeded and cold shard builds produce bit-identical CSTs (per shard
    /// *and* merged) and identical embedding counts, for all four planners
    /// across thread counts {1, 2, 4, 8}.
    #[test]
    fn seeded_builds_are_bit_identical_to_cold(
        q in arb_query(),
        graph_seed in 0u64..200,
        shards in 2usize..10,
    ) {
        let g = random_labelled_graph(45, 0.15, 2, graph_seed);
        let tree = BfsTree::new(&q, QueryVertexId::new(0));
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs");
        let sequential = cst::build_cst(&q, &g, &tree);
        let whole = count_embeddings(&sequential, &q, &order);
        for planner in [
            ShardPlanner::Contiguous,
            ShardPlanner::WorkloadBalanced,
            ShardPlanner::OverlapAware,
            ShardPlanner::Auto,
        ] {
            // Cold reference at one thread, then every seeded thread count
            // must reproduce it bit for bit.
            let (cold, cold_stats) =
                build_cst_sharded(&q, &g, &tree, &options(planner, 1, shards, false));
            prop_assert_eq!(cold_stats.seeded_shards, 0, "{}: seeding was disabled", planner);
            for threads in [1usize, 2, 4, 8] {
                let opts = options(planner, threads, shards, true);
                let (seeded, stats) = build_cst_sharded(&q, &g, &tree, &opts);
                prop_assert!(
                    csts_identical(&cold, &seeded),
                    "{} threads {} seeded CST differs",
                    planner,
                    threads
                );
                prop_assert_eq!(
                    count_embeddings(&seeded, &q, &order),
                    whole,
                    "{} threads {}",
                    planner,
                    threads
                );
                // Non-contiguous planners probe (except in the degenerate
                // ≤1-root case, where planning short-circuits), so their
                // builds must have been seeded — and seeded builds do no
                // top-down scanning.
                if planner != ShardPlanner::Contiguous && stats.root_candidates > 1 {
                    prop_assert_eq!(stats.seeded_shards, stats.shards, "{}", planner);
                    prop_assert_eq!(stats.topdown_entries, 0usize, "{}", planner);
                } else if planner == ShardPlanner::Contiguous {
                    prop_assert_eq!(stats.seeded_shards, 0usize, "{}", planner);
                }
            }
        }
    }

    /// Per-shard bit-identity straight at the construct layer: every shard's
    /// seeded build equals the cold `build_cst_from_roots` on the same chunk
    /// — including the non-tree adjacency, which the seed must re-materialise
    /// from the graph (the probe's stride-sampled non-tree edges are a
    /// counting estimate, never exact candidates).
    #[test]
    fn seed_chunks_reproduce_every_shard(
        q in arb_query(),
        graph_seed in 0u64..200,
        shards in 2usize..8,
    ) {
        let g = random_labelled_graph(40, 0.18, 2, graph_seed);
        let tree = BfsTree::new(&q, QueryVertexId::new(0));
        let opts = options(ShardPlanner::OverlapAware, 1, shards, true);
        let roots = root_candidates(&q, &g, &tree, opts.cst);
        if roots.len() <= 1 {
            return Ok(()); // degenerate: the pipeline never probes
        }
        let plan = plan_pipeline_shards(&q, &g, &tree, &opts, &roots);
        let probe = plan.probe.as_ref().expect("probing planner retains its probe");
        let seeds = probe
            .seed_chunks(&plan, &roots)
            .expect("probe carries the candidate space");
        prop_assert_eq!(seeds.len(), plan.shard_count());
        for (s, seed) in seeds.into_iter().enumerate() {
            let chunk = plan.chunk_roots(&roots, s);
            let (cold, cold_stats) =
                build_cst_from_roots(&q, &g, &tree, opts.cst, chunk);
            let (warm, warm_stats) = build_cst_seeded(&q, &g, &tree, opts.cst, seed);
            prop_assert!(csts_identical(&cold, &warm), "shard {} differs", s);
            prop_assert_eq!(
                &cold_stats.candidates_before_refine,
                &warm_stats.candidates_before_refine,
                "shard {} phase-1 sets differ", s
            );
            prop_assert_eq!(cold_stats.adjacency_entries, warm_stats.adjacency_entries);
            prop_assert_eq!(warm_stats.topdown_entries, 0usize, "seeded build scanned");
        }
    }

    /// The full host driver (partition → schedule → kernel) is unchanged by
    /// seeding: identical embeddings and identical downstream partition /
    /// transfer / kernel counts with `seed_from_probe` on and off.
    #[test]
    fn host_driver_downstream_is_identical_with_and_without_seeding(
        graph_seed in 0u64..150,
        shards in 2usize..8,
    ) {
        let q = QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(1)],
            &[(0, 1), (1, 2), (0, 2)],
        ).expect("triangle");
        let g = random_labelled_graph(50, 0.2, 2, graph_seed);
        let mut fingerprints = Vec::new();
        for seed in [false, true] {
            let mut config = FastConfig::test_small(Variant::Share);
            config.host_threads = 2;
            config.pipeline_shards = Some(shards);
            config.shard_planner = ShardPlanner::Auto;
            config.seed_from_probe = seed;
            let r = run_fast(&q, &g, &config).expect("run");
            fingerprints.push((
                r.embeddings,
                r.fpga_partitions,
                r.cpu_partitions,
                r.stolen,
                r.transfer_bytes,
                r.kernel_cycles,
                r.counts.n,
                r.counts.m,
                r.pipeline_shards,
            ));
        }
        prop_assert_eq!(fingerprints[0], fingerprints[1]);
    }
}

/// A stale or foreign probe must be discarded with its plan: handing the
/// pipeline a plan (and probe) computed for different options replans and
/// re-probes instead of trusting the mismatched candidate space.
#[test]
fn foreign_probe_is_discarded_and_recomputed() {
    let q = QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .unwrap();
    let g = random_labelled_graph(60, 0.2, 2, 7);
    let tree = BfsTree::new(&q, QueryVertexId::new(0));
    let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
    let whole = count_embeddings(&cst::build_cst(&q, &g, &tree), &q, &order);

    let opts = options(ShardPlanner::WorkloadBalanced, 1, 4, true);
    let fresh = for_each_shard_cst_planned(&q, &g, &tree, &opts, None, |_| {});
    assert!(fresh.plan.probe.is_some(), "probing planner retains its probe");
    assert_eq!(fresh.seeded_shards, fresh.shards, "fresh run seeds from its probe");

    // Same root set, different plan-relevant options: provenance mismatch.
    // The stale plan (and the probe inside it) must be replanned, and the
    // replanned run still seeds — from the *new* probe.
    let other = options(ShardPlanner::WorkloadBalanced, 1, 2, true);
    let mut sum = 0u64;
    let replanned =
        for_each_shard_cst_planned(&q, &g, &tree, &other, Some(&fresh.plan), |s| {
            sum += count_embeddings(&s.cst, &q, &order);
        });
    assert_eq!(replanned.shards, 2, "stale plan must not override the options");
    assert_eq!(replanned.seeded_shards, 2, "replanned run seeds from the fresh probe");
    assert_eq!(sum, whole);

    // A tampered plan (provenance zeroed) is never trusted — even though it
    // still carries a plausible probe.
    let mut tampered = fresh.plan.clone();
    tampered.provenance = 0;
    let mut sum2 = 0u64;
    let guarded = for_each_shard_cst_planned(&q, &g, &tree, &opts, Some(&tampered), |s| {
        sum2 += count_embeddings(&s.cst, &q, &order);
    });
    assert_eq!(guarded.plan.planner, ShardPlanner::WorkloadBalanced);
    assert_ne!(guarded.plan.provenance, 0, "replanned plan carries provenance");
    assert_eq!(sum2, whole);
}

/// Disabling seeding falls back to cold builds without touching results.
#[test]
fn seeding_knob_off_runs_cold() {
    let q = QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(0)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .unwrap();
    let g = random_labelled_graph(50, 0.22, 2, 21);
    let tree = BfsTree::new(&q, QueryVertexId::new(0));
    let on = build_cst_sharded(&q, &g, &tree, &options(ShardPlanner::Auto, 2, 4, true));
    let off = build_cst_sharded(&q, &g, &tree, &options(ShardPlanner::Auto, 2, 4, false));
    assert!(csts_identical(&on.0, &off.0));
    assert!(on.1.seeded_shards == on.1.shards || on.1.shards == 1);
    assert_eq!(off.1.seeded_shards, 0);
    assert!(off.1.topdown_entries > 0, "cold builds scan top-down");
}
