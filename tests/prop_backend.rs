//! Backend-equivalence tests: the heterogeneous device pool must never
//! change an answer. A CPU-only fleet, an FPGA-only fleet, and a mixed
//! fleet serve bit-identical embedding counts for every shard planner on
//! the benchmark queries — and all of them agree with the one-shot
//! `run_fast` path.

use fast::{FastConfig, ShardPlanner, Variant};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{benchmark_query, Graph, QueryGraph};
use serve::{DeviceKind, FastService, ServeConfig, SessionHandle};
use std::sync::Arc;

/// The small-figure query subset the serving studies use (q0 path, q1/q2
/// cycles, q4 cycle) — planner-heavy and flat shapes together.
const QUERY_MIX: [usize; 4] = [0, 1, 2, 4];

fn config(planner: ShardPlanner, devices: usize, extra: Vec<DeviceKind>) -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = planner;
    ServeConfig {
        fast,
        devices,
        extra_devices: extra,
        workers: 2,
        cache_capacity: 16,
        plan_cache_bytes: None,
        cst_cache_bytes: 16 << 20,
        max_in_flight: 8,
        ..ServeConfig::default()
    }
}

fn serve_counts(
    g: &Arc<Graph>,
    queries: &[QueryGraph],
    planner: ShardPlanner,
    devices: usize,
    extra: Vec<DeviceKind>,
) -> Vec<u64> {
    let service = FastService::new(Arc::clone(g), config(planner, devices, extra));
    let handles: Vec<SessionHandle> = queries.iter().map(|q| service.submit(q.clone())).collect();
    let counts = handles
        .into_iter()
        .map(|h| h.wait().expect("session").embeddings)
        .collect();
    let report = service.shutdown();
    assert_eq!(report.failed, 0);
    counts
}

/// CPU-only, FPGA-only, and mixed fleets are bit-identical to each other
/// and to `run_fast`, for all four shard planners.
#[test]
fn all_fleets_agree_with_run_fast_for_every_planner() {
    let g = Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42));
    let queries: Vec<QueryGraph> = QUERY_MIX.iter().map(|&i| benchmark_query(i)).collect();

    // The fleet-independent reference: the one-shot host path.
    let oneshot: Vec<u64> = queries
        .iter()
        .map(|q| {
            fast::run_fast(q, &g, &FastConfig::test_small(Variant::Sep))
                .expect("one-shot run")
                .embeddings
        })
        .collect();
    assert!(oneshot.iter().any(|&e| e > 0), "degenerate workload");

    for planner in [
        ShardPlanner::Contiguous,
        ShardPlanner::WorkloadBalanced,
        ShardPlanner::OverlapAware,
        ShardPlanner::Auto,
    ] {
        let fpga_only = serve_counts(&g, &queries, planner, 2, Vec::new());
        let cpu_only = serve_counts(
            &g,
            &queries,
            planner,
            0,
            vec![DeviceKind::Cpu { threads: 2 }, DeviceKind::Cpu { threads: 4 }],
        );
        let mixed = serve_counts(
            &g,
            &queries,
            planner,
            1,
            vec![DeviceKind::Cpu { threads: 4 }],
        );
        assert_eq!(
            fpga_only, oneshot,
            "{planner}: FPGA fleet disagrees with run_fast"
        );
        assert_eq!(
            cpu_only, oneshot,
            "{planner}: CPU fallback fleet disagrees with run_fast"
        );
        assert_eq!(
            mixed, oneshot,
            "{planner}: heterogeneous fleet disagrees with run_fast"
        );
    }
}

/// Double-submit on every fleet: the second serve of each query is a
/// tier-2 hit (zero build work) and still bit-identical to the first —
/// the cached shard CSTs replay the same answer whether the kernels run
/// on emulated FPGA cards, CPU fallback shares, or a mix.
#[test]
fn warm_tier2_serves_agree_across_fleets() {
    let g = Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42));
    let queries: Vec<QueryGraph> = QUERY_MIX.iter().map(|&i| benchmark_query(i)).collect();

    let fleets: [(usize, Vec<DeviceKind>); 3] = [
        (2, Vec::new()),
        (
            0,
            vec![DeviceKind::Cpu { threads: 2 }, DeviceKind::Cpu { threads: 4 }],
        ),
        (1, vec![DeviceKind::Cpu { threads: 4 }]),
    ];
    let mut reference: Option<Vec<u64>> = None;
    for (fleet_idx, (devices, extra)) in fleets.into_iter().enumerate() {
        let service = FastService::new(
            Arc::clone(&g),
            config(ShardPlanner::Auto, devices, extra),
        );
        let mut warm_counts = Vec::new();
        for q in &queries {
            let cold = service.submit(q.clone()).wait().expect("cold serve");
            let warm = service.submit(q.clone()).wait().expect("warm serve");
            assert!(!cold.cst_cache_hit, "fleet {fleet_idx}: first serve must miss");
            assert!(
                warm.cst_cache_hit,
                "fleet {fleet_idx}: second serve must hit tier 2"
            );
            assert_eq!(
                warm.build_time,
                std::time::Duration::ZERO,
                "fleet {fleet_idx}: tier-2 hit must build nothing"
            );
            assert_eq!(warm.topdown_entries, 0, "fleet {fleet_idx}: no top-down scan");
            assert_eq!(
                cold.embeddings, warm.embeddings,
                "fleet {fleet_idx}: tier-2 replay changed the count"
            );
            assert_eq!(
                cold.kernel_cycles, warm.kernel_cycles,
                "fleet {fleet_idx}: tier-2 replay changed the modelled kernel work"
            );
            warm_counts.push(warm.embeddings);
        }
        let report = service.shutdown();
        assert_eq!(report.failed, 0);
        assert!(report.cst_cache.hits >= queries.len() as u64);
        match &reference {
            None => reference = Some(warm_counts),
            Some(r) => assert_eq!(
                r, &warm_counts,
                "fleet {fleet_idx}: warm counts differ across fleets"
            ),
        }
    }
}

/// CPU-executed partitions stream with class `Cpu`, zero kernel cycles,
/// and a positive modelled time — and still sum to the exact count.
#[test]
fn cpu_partitions_have_cpu_pricing() {
    use fast::BackendClass;
    use serve::SessionEvent;

    let g = Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42));
    let service = FastService::new(
        Arc::clone(&g),
        config(
            ShardPlanner::Auto,
            0,
            vec![DeviceKind::Cpu { threads: 2 }],
        ),
    );
    let handle = service.submit(benchmark_query(1));
    let mut streamed = 0u64;
    let report = loop {
        match handle.next_event().expect("session alive") {
            SessionEvent::Partition(u) => {
                assert_eq!(u.backend, BackendClass::Cpu);
                assert_eq!(u.kernel_cycles, 0, "CPU partitions have no cycle notion");
                assert!(u.modeled_sec >= 0.0 && u.modeled_sec.is_finite());
                streamed += u.embeddings;
            }
            SessionEvent::Done(r) => break r,
            SessionEvent::Failed(e) => panic!("failed: {e}"),
        }
    };
    assert_eq!(streamed, report.embeddings);
    assert_eq!(report.kernel_cycles, 0);
    let final_report = service.shutdown();
    assert_eq!(final_report.devices.len(), 1);
    assert_eq!(final_report.devices[0].class, BackendClass::Cpu);
    assert_eq!(final_report.devices[0].cycles, 0);
    assert!(final_report.device_busy_sec > 0.0);
}
