//! Observability property tests: under randomized seeded fault schedules
//! the trace and the metrics pipeline must agree **exactly once** — every
//! submission records one `session` span, every counted retry/failover/
//! corruption-catch/quarantine/deadline-shed records one matching trace
//! event, the `obs_*` registry counters mirror the [`ServeReport`]
//! fields one-for-one, and rolling [`FastService::report_window`] deltas
//! sum bit-exactly back to the lifetime report.
//!
//! The obs state (tracer + registry) is process-global, so every test
//! here serializes on one lock and resets the state around its measured
//! service. Fault strategies never use panic faults: a panicking worker
//! cannot close its session span, which is exactly the one exit path the
//! exactly-once claim excludes.

use fast::{FastConfig, FaultPlan, ShardPlanner, Variant};
use graph_core::generators::{generate_ldbc, LdbcParams};
use graph_core::{benchmark_query, Graph};
use proptest::prelude::*;
use serve::{DeviceKind, FastService, FaultPolicy, ServeConfig, ServeError};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// The serving studies' query subset (planner-heavy and flat shapes).
const QUERY_MIX: [usize; 4] = [0, 1, 2, 4];

/// Serializes obs-enabled tests: the tracer and registry are global, so
/// concurrent test threads would interleave spans and counter bumps.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The shared workload graph.
fn workload() -> &'static Arc<Graph> {
    static W: OnceLock<Arc<Graph>> = OnceLock::new();
    W.get_or_init(|| Arc::new(generate_ldbc(&LdbcParams::with_scale_factor(0.05), 42)))
}

/// A random fault schedule — transients, stalls, optional corruption and
/// permanent death, but never panics (see the module docs).
fn arb_plan(corrupt: bool) -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0f64..0.35,
        0.0f64..0.2,
        0.0f64..0.25,
        (any::<bool>(), 4u64..64),
    )
        .prop_map(move |(seed, transient, stall, corrupt_rate, (dies, dies_at))| FaultPlan {
            seed,
            transient_rate: transient,
            stall_rate: stall,
            corrupt_rate: if corrupt { corrupt_rate } else { 0.0 },
            permanent_after: dies.then_some(dies_at),
            panic_after: None,
            slowdown: 1.0,
        })
}

fn faulty(inner: DeviceKind, plan: FaultPlan) -> DeviceKind {
    DeviceKind::Faulty {
        inner: Box::new(inner),
        plan,
    }
}

/// A chaos fleet keeping one unwrapped always-healthy card, corruption on
/// at most one device (the cross-check needs an honest second opinion).
fn fleet(fast: &FastConfig, p0: FaultPlan, p1: FaultPlan) -> Vec<DeviceKind> {
    let fpga = || DeviceKind::Fpga(fast.spec.clone());
    vec![faulty(fpga(), p0), faulty(fpga(), p1), fpga()]
}

fn obs_config(extra: Vec<DeviceKind>) -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = ShardPlanner::Auto;
    ServeConfig {
        fast,
        devices: 0,
        extra_devices: extra,
        workers: 2,
        cache_capacity: 16,
        plan_cache_bytes: None,
        cst_cache_bytes: 16 << 20,
        max_in_flight: 8,
        fault: FaultPolicy {
            max_attempts: 16,
            backoff: Duration::ZERO,
            cross_check: true,
            cpu_fallback: true,
            ..FaultPolicy::default()
        },
        ..ServeConfig::default()
    }
}

/// Current value of a global obs counter (registered on first use).
fn counter(name: &'static str) -> u64 {
    obs::counter(name, "").get()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Exactly-once trace/metrics reconciliation under faults: one
    /// `session` span per submission, one `retry`/`failover`/
    /// `corruption_strike`/`quarantine` event per counted occurrence,
    /// registry counters mirroring the report — and two rolling windows
    /// that sum bit-exactly (integer counters and histogram buckets)
    /// back to the lifetime report.
    #[test]
    fn spans_and_counters_reconcile_exactly_once(
        p0 in arb_plan(true),
        p1 in arb_plan(false),
    ) {
        if !obs::COMPILED {
            return Ok(());
        }
        let _serial = obs_lock();
        obs::reset();
        obs::enable();
        let g = workload();
        let service = FastService::new(
            Arc::clone(g),
            obs_config(fleet(&FastConfig::test_small(Variant::Sep), p0, p1)),
        );
        // Two waves with a window boundary between them; every handle is
        // waited, and `finish` folds metrics *before* the Done event is
        // sent, so the window after the wave covers exactly that wave.
        for h in QUERY_MIX.map(|i| service.submit(benchmark_query(i))) {
            h.wait().expect("chaos session completes");
        }
        let w0 = service.report_window();
        for h in QUERY_MIX.map(|i| service.submit(benchmark_query(i))) {
            h.wait().expect("chaos session completes");
        }
        let w1 = service.report_window();
        let life = service.shutdown();
        obs::disable();

        prop_assert_eq!(life.failed, 0, "no session may fail under the schedule");
        prop_assert_eq!(life.deadline_misses, 0);
        prop_assert_eq!(obs::trace_dropped(), 0, "trace buffer overflowed");
        let (spans, events) = obs::trace_snapshot();
        let nspan = |n: &str| spans.iter().filter(|s| s.name == n).count() as u64;
        let nev = |n: &str| events.iter().filter(|e| e.name == n).count() as u64;

        // Span accounting: every submission was picked up and closed.
        prop_assert_eq!(nspan("session"), life.submitted);
        prop_assert_eq!(nspan("queue_wait"), life.submitted);
        prop_assert_eq!(nspan("build"), life.completed, "one build span per completed session");
        prop_assert!(nspan("execute") >= life.completed, "each session executes ≥ 1 partition");

        // Event accounting: exactly one trace event per counted fault.
        prop_assert_eq!(nev("retry"), life.retries);
        prop_assert_eq!(nev("failover"), life.failovers);
        prop_assert_eq!(nev("corruption_strike"), life.corruption_catches);
        prop_assert_eq!(nev("quarantine"), life.quarantines);
        prop_assert_eq!(nev("deadline_shed"), 0);

        // Registry counters mirror the report one-for-one.
        prop_assert_eq!(counter("obs_sessions_submitted_total"), life.submitted);
        prop_assert_eq!(counter("obs_sessions_completed_total"), life.completed);
        prop_assert_eq!(counter("obs_sessions_failed_total"), life.failed);
        prop_assert_eq!(counter("obs_deadline_misses_total"), life.deadline_misses);
        prop_assert_eq!(counter("obs_retries_total"), life.retries);
        prop_assert_eq!(counter("obs_failovers_total"), life.failovers);
        prop_assert_eq!(counter("obs_corruption_catches_total"), life.corruption_catches);
        prop_assert_eq!(counter("obs_quarantines_total"), life.quarantines);

        // The two windows partition the lifetime: integer counters and
        // histogram bucket counts reconcile bit-exactly.
        prop_assert_eq!(w0.window.unwrap().seq, 0);
        prop_assert_eq!(w1.window.unwrap().seq, 1);
        prop_assert!(w0.is_finite() && w1.is_finite() && life.is_finite());
        prop_assert_eq!(w0.submitted + w1.submitted, life.submitted);
        prop_assert_eq!(w0.completed + w1.completed, life.completed);
        prop_assert_eq!(w0.retries + w1.retries, life.retries);
        prop_assert_eq!(w0.failovers + w1.failovers, life.failovers);
        prop_assert_eq!(
            w0.corruption_catches + w1.corruption_catches,
            life.corruption_catches
        );
        prop_assert_eq!(w0.quarantines + w1.quarantines, life.quarantines);
        prop_assert_eq!(
            w0.total_embeddings + w1.total_embeddings,
            life.total_embeddings
        );
        prop_assert_eq!(
            w0.cache.hits + w1.cache.hits + w0.cst_cache.hits + w1.cst_cache.hits,
            life.cache.hits + life.cst_cache.hits
        );
        prop_assert_eq!(
            w0.latency_hist.count() + w1.latency_hist.count(),
            life.latency_hist.count()
        );
        let mut merged = w0.latency_hist.clone();
        merged.merge(&w1.latency_hist);
        prop_assert_eq!(
            merged.cumulative(),
            life.latency_hist.cumulative(),
            "window histograms must merge back to the lifetime buckets"
        );
        let mut qmerged = w0.queue_wait_hist.clone();
        qmerged.merge(&w1.queue_wait_hist);
        prop_assert_eq!(qmerged.cumulative(), life.queue_wait_hist.cumulative());
        obs::reset();
    }

    /// Deadline sheds reconcile too: a zero budget sheds every session
    /// with one `deadline_shed` event and one closed `session` span each,
    /// mirrored by the registry counter.
    #[test]
    fn deadline_sheds_reconcile(p0 in arb_plan(false)) {
        if !obs::COMPILED {
            return Ok(());
        }
        let _serial = obs_lock();
        obs::reset();
        obs::enable();
        let g = workload();
        let mut config = obs_config(fleet(&FastConfig::test_small(Variant::Sep), p0.clone(), p0));
        config.deadline = Some(Duration::ZERO);
        let service = FastService::new(Arc::clone(g), config);
        for &i in &QUERY_MIX {
            let err = service.submit(benchmark_query(i)).wait().unwrap_err();
            prop_assert_eq!(err, ServeError::DeadlineExceeded);
        }
        let life = service.shutdown();
        obs::disable();

        prop_assert_eq!(life.deadline_misses, QUERY_MIX.len() as u64);
        prop_assert_eq!(obs::trace_dropped(), 0);
        let (spans, events) = obs::trace_snapshot();
        let sheds = events.iter().filter(|e| e.name == "deadline_shed").count() as u64;
        prop_assert_eq!(sheds, life.deadline_misses);
        let sessions = spans.iter().filter(|s| s.name == "session").count() as u64;
        prop_assert_eq!(sessions, life.submitted, "shed sessions still close their span");
        prop_assert_eq!(counter("obs_deadline_misses_total"), life.deadline_misses);
        prop_assert_eq!(counter("obs_sessions_completed_total"), 0);
        obs::reset();
    }
}
