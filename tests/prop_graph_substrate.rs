//! Property-based tests of the graph substrate: CSR invariants, I/O
//! round-trips, order validity, and workload-estimation consistency.

use cst::{build_cst, count_embeddings, estimate_workload};
use graph_core::generators::random_labelled_graph;
use graph_core::{
    io, random_connected_order, BfsTree, MatchingOrder, QueryGraph, QueryVertexId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// CSR structural invariants on arbitrary random graphs.
    #[test]
    fn csr_invariants(n in 1usize..80, p in 0.0f64..0.4, labels in 1u16..5, seed: u64) {
        let g = random_labelled_graph(n, p, labels, seed);
        // Degree sums to twice the edge count.
        let degree_sum: u64 = g.vertices().map(|v| g.degree(v) as u64).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count() as u64);
        // Adjacency symmetric and sorted.
        for v in g.vertices() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &w in ns {
                prop_assert!(g.has_edge(w, v));
            }
        }
        // Label index partitions the vertex set.
        let total: usize = (0..g.label_count())
            .map(|l| g.vertices_with_label(graph_core::Label::new(l as u16)).len())
            .sum();
        prop_assert_eq!(total, g.vertex_count());
    }

    /// Text serialisation round-trips exactly.
    #[test]
    fn io_roundtrip(n in 1usize..60, p in 0.0f64..0.3, seed: u64) {
        let g = random_labelled_graph(n, p, 4, seed);
        let mut buf = Vec::new();
        io::write_graph_text(&g, &mut buf).expect("write");
        let g2 = io::read_graph_text(&buf[..]).expect("read");
        prop_assert_eq!(g.vertex_count(), g2.vertex_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        for v in g.vertices() {
            prop_assert_eq!(g.neighbors(v), g2.neighbors(v));
            prop_assert_eq!(g.label(v), g2.label(v));
        }
    }

    /// Random connected orders always validate and start at the seed vertex.
    #[test]
    fn random_orders_always_valid(order_seed: u64) {
        let q = graph_core::benchmark_query(6);
        let mut rng = StdRng::seed_from_u64(order_seed);
        let o = random_connected_order(&q, QueryVertexId::new(0), &mut rng);
        prop_assert_eq!(o.first(), QueryVertexId::new(0));
        // Re-validate through the public constructor.
        prop_assert!(MatchingOrder::new(&q, o.as_slice().to_vec()).is_ok());
    }

    /// The workload DP upper-bounds the true embedding count (it ignores
    /// injectivity and non-tree edges, both of which only prune).
    #[test]
    fn workload_estimate_upper_bounds_embeddings(seed in 0u64..300) {
        let q = graph_core::benchmark_query(2);
        let g = graph_core::generators::generate_ldbc(
            &graph_core::generators::LdbcParams::with_scale_factor(0.03),
            seed,
        );
        let root = graph_core::select_root(&q, &g);
        let tree = BfsTree::new(&q, root);
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs");
        let cst = build_cst(&q, &g, &tree);
        let w = estimate_workload(&cst, &tree);
        let exact = count_embeddings(&cst, &q, &order);
        prop_assert!(
            w.total + 0.5 >= exact as f64,
            "estimate {} < exact {}", w.total, exact
        );
    }

    /// Edge sampling preserves subgraph relation: sampled-graph matches are
    /// a subset count of full-graph matches.
    #[test]
    fn sampling_is_monotone(seed in 0u64..200, fraction in 0.2f64..0.9) {
        let q = graph_core::benchmark_query(0);
        let g = graph_core::generators::generate_ldbc(
            &graph_core::generators::LdbcParams::with_scale_factor(0.03),
            seed,
        );
        let s = graph_core::sample_edges(&g, fraction, seed ^ 0xABCD);
        let count = |graph: &graph_core::Graph| {
            let root = graph_core::select_root(&q, graph);
            let tree = BfsTree::new(&q, root);
            let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs");
            let cst = build_cst(&q, graph, &tree);
            count_embeddings(&cst, &q, &order)
        };
        prop_assert!(count(&s) <= count(&g));
    }
}

/// Deterministic generation: the dataset ladder must be bit-stable, since
/// every experiment in EXPERIMENTS.md depends on it.
#[test]
fn dataset_generation_is_deterministic() {
    use graph_core::generators::{generate_ldbc, LdbcParams};
    let a = generate_ldbc(&LdbcParams::with_scale_factor(0.1), 99);
    let b = generate_ldbc(&LdbcParams::with_scale_factor(0.1), 99);
    assert_eq!(a.vertex_count(), b.vertex_count());
    assert_eq!(a.edge_count(), b.edge_count());
    for v in a.vertices() {
        assert_eq!(a.neighbors(v), b.neighbors(v));
    }
}

/// The CST of a query with no matching labels is empty but well-formed.
#[test]
fn empty_search_spaces_are_handled() {
    let q = QueryGraph::new(
        vec![graph_core::Label::new(9), graph_core::Label::new(9)],
        &[(0, 1)],
    )
    .unwrap();
    let g = random_labelled_graph(20, 0.3, 2, 7);
    let tree = BfsTree::new(&q, QueryVertexId::new(0));
    let cst = build_cst(&q, &g, &tree);
    assert!(cst.any_empty());
    let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
    assert_eq!(count_embeddings(&cst, &q, &order), 0);
}
