//! Edge cases and failure-injection across the whole stack.

use fast::{run_fast, FastConfig, KernelPlan, PlanError, Variant, MAX_KERNEL_QUERY};
use graph_core::{
    BfsTree, GraphBuilder, Label, MatchingOrder, QueryGraph, QueryVertexId, VertexId,
};
use matching::{run_baseline, Baseline, RunLimits};

fn l(x: u16) -> Label {
    Label::new(x)
}

/// A single-vertex query is a degenerate but legal input everywhere.
#[test]
fn single_vertex_query_end_to_end() {
    let mut b = GraphBuilder::new();
    for i in 0..10 {
        b.add_vertex(l(u16::from(i % 2 == 0)));
    }
    // Give the graph some edges so degree filters have something to see.
    for i in 1..10u32 {
        b.add_edge(VertexId::new(0), VertexId::new(i)).unwrap();
    }
    let g = b.build();
    let q = QueryGraph::new(vec![l(0)], &[]).unwrap();
    let report = run_fast(&q, &g, &FastConfig::default()).unwrap();
    // Vertices with label 0 (even ids): 0,2,4,6,8 → but degree filter needs
    // degree >= 0, so all five match.
    assert_eq!(report.embeddings, 5);
}

/// Queries above the kernel register budget are rejected, not mangled.
#[test]
fn oversized_query_is_a_clean_error() {
    let n = MAX_KERNEL_QUERY + 1;
    let labels = vec![l(0); n];
    let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let q = QueryGraph::new(labels, &edges).unwrap();
    let mut b = GraphBuilder::new();
    let v0 = b.add_vertex(l(0));
    let v1 = b.add_vertex(l(0));
    b.add_edge(v0, v1).unwrap();
    let g = b.build();

    let tree = BfsTree::new(&q, QueryVertexId::new(0));
    let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
    assert_eq!(
        KernelPlan::new(&q, &order, &tree).unwrap_err(),
        PlanError::QueryTooLarge(n)
    );
    assert!(run_fast(&q, &g, &FastConfig::default()).is_err());
}

/// A graph where every vertex shares one label: candidate sets are maximal
/// and the visited validator does all the pruning.
#[test]
fn uniform_label_clique() {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..6).map(|_| b.add_vertex(l(0))).collect();
    for i in 0..vs.len() {
        for j in (i + 1)..vs.len() {
            b.add_edge(vs[i], vs[j]).unwrap();
        }
    }
    let g = b.build();
    // Triangle query on a 6-clique: 6·5·4 = 120 embeddings.
    let q = QueryGraph::new(vec![l(0); 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let report = run_fast(&q, &g, &FastConfig::default()).unwrap();
    assert_eq!(report.embeddings, 120);
    let ceci = run_baseline(Baseline::Ceci, &q, &g, &RunLimits::unlimited());
    assert_eq!(ceci.embeddings, 120);
}

/// Star query against a hub: exercises the resume-offset slicing in the
/// Generator (candidate lists far longer than N_o).
#[test]
fn hub_fanout_exceeding_no() {
    let mut b = GraphBuilder::new();
    let hub = b.add_vertex(l(0));
    let leaves: Vec<VertexId> = (0..500).map(|_| b.add_vertex(l(1))).collect();
    for &leaf in &leaves {
        b.add_edge(hub, leaf).unwrap();
    }
    let g = b.build();
    let q = QueryGraph::new(vec![l(0), l(1), l(1)], &[(0, 1), (0, 2)]).unwrap();

    // Tiny No forces hundreds of slicing rounds.
    let mut config = FastConfig::test_small(Variant::Basic);
    config.spec.no = 4;
    let report = run_fast(&q, &g, &config).unwrap();
    // Ordered pairs of distinct leaves: 500·499.
    assert_eq!(report.embeddings, 500 * 499);
}

/// Isolated vertices (degree 0) must be ignored gracefully.
#[test]
fn isolated_vertices_do_not_match_connected_queries() {
    let mut b = GraphBuilder::new();
    let a = b.add_vertex(l(0));
    let c = b.add_vertex(l(1));
    b.add_edge(a, c).unwrap();
    for _ in 0..20 {
        b.add_vertex(l(0)); // isolated
        b.add_vertex(l(1)); // isolated
    }
    let g = b.build();
    let q = QueryGraph::new(vec![l(0), l(1)], &[(0, 1)]).unwrap();
    let report = run_fast(&q, &g, &FastConfig::default()).unwrap();
    assert_eq!(report.embeddings, 1);
}

/// An empty graph returns zero embeddings without panicking anywhere.
#[test]
fn empty_graph_everywhere() {
    let g = GraphBuilder::new().build();
    let q = QueryGraph::new(vec![l(0), l(1)], &[(0, 1)]).unwrap();
    let report = run_fast(&q, &g, &FastConfig::default()).unwrap();
    assert_eq!(report.embeddings, 0);
    for baseline in Baseline::ALL {
        let r = run_baseline(baseline, &q, &g, &RunLimits::unlimited());
        assert_eq!(r.embeddings, 0, "{}", baseline.name());
    }
}

/// Self-consistency under an adversarial spec: 1-byte δ_S budget forces the
/// partitioner to its singleton floor and the cap, yet counts must hold.
#[test]
fn pathological_bram_budget_still_correct() {
    use graph_core::generators::random_labelled_graph;
    let g = random_labelled_graph(30, 0.25, 2, 77);
    let q = QueryGraph::new(vec![l(0), l(1), l(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let expected = matching::vf2_count(&q, &g);

    let mut config = FastConfig::test_small(Variant::Sep);
    config.spec.bram_bytes = 4096; // leaves almost nothing after the buffer
    config.spec.no = 2;
    config.max_partitions = 1 << 14;
    let report = run_fast(&q, &g, &config).unwrap();
    assert_eq!(report.embeddings, expected);
}
