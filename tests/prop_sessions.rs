//! Model-based tests of the event-driven session executor: a seeded,
//! randomized interleaving of submits, non-blocking `try_submit`s, waits,
//! and mid-stream epoch bumps is driven against the serving layer under
//! tight permits, live (huge) deadlines, and recoverable faults — and
//! every session's embedding count must equal the one-shot `run_fast`
//! oracle, for all four shard planners. The session state machine may
//! park, steal, retry, and re-plan however it likes; the answer may not
//! move by a bit.

use fast::{FastConfig, FaultPlan, ShardPlanner, Variant};
use graph_core::generators::random_labelled_graph;
use graph_core::{Graph, Label, QueryGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{
    DeviceKind, FastService, FaultPolicy, ServeConfig, ServeError, SessionHandle, TenantId,
};
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Seeded random connected query (tree skeleton + extra edges).
fn random_query(n: usize, seed: u64) -> QueryGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<Label> = (0..n).map(|_| Label::new(rng.gen_range(0..2))).collect();
    let mut edges = Vec::new();
    for i in 1..n {
        edges.push((rng.gen_range(0..i), i));
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(0.3) {
                edges.push((a, b));
            }
        }
    }
    QueryGraph::new(labels, &edges).expect("connected by construction")
}

/// Shared workload: one graph, a small distinct query set, and the
/// one-shot `run_fast` oracle count for each query.
fn workload() -> &'static (Arc<Graph>, Vec<QueryGraph>, Vec<u64>) {
    static W: OnceLock<(Arc<Graph>, Vec<QueryGraph>, Vec<u64>)> = OnceLock::new();
    W.get_or_init(|| {
        let g = Arc::new(random_labelled_graph(48, 0.2, 2, 31));
        let queries: Vec<QueryGraph> = (0..4)
            .map(|i| random_query(3 + i % 3, 1000 + i as u64))
            .collect();
        let oracle: Vec<u64> = queries
            .iter()
            .map(|q| {
                fast::run_fast(q, &g, &FastConfig::test_small(Variant::Sep))
                    .expect("oracle run")
                    .embeddings
            })
            .collect();
        assert!(oracle.iter().any(|&e| e > 0), "degenerate workload");
        (g, queries, oracle)
    })
}

/// Service under test: tight permits, a live-but-never-binding deadline
/// (so every state transition runs its deadline re-check without a shed),
/// and one recoverably-faulty device next to a healthy one.
fn session_config(
    planner: ShardPlanner,
    workers: usize,
    max_in_flight: usize,
    fault_seed: u64,
) -> ServeConfig {
    let mut fast = FastConfig::test_small(Variant::Sep);
    fast.shard_planner = planner;
    let healthy = DeviceKind::Cpu { threads: 2 };
    let flaky = DeviceKind::Faulty {
        inner: Box::new(DeviceKind::Cpu { threads: 2 }),
        plan: FaultPlan {
            seed: fault_seed,
            transient_rate: 0.25,
            stall_rate: 0.1,
            corrupt_rate: 0.0,
            permanent_after: None,
            panic_after: None,
            slowdown: 1.0,
        },
    };
    ServeConfig {
        fast,
        devices: 0,
        extra_devices: vec![flaky, healthy],
        workers,
        cache_capacity: 16,
        plan_cache_bytes: None,
        cst_cache_bytes: 16 << 20,
        max_in_flight,
        deadline: Some(Duration::from_secs(3600)),
        fault: FaultPolicy {
            max_attempts: 16,
            backoff: Duration::ZERO,
            cross_check: false,
            cpu_fallback: true,
            ..FaultPolicy::default()
        },
    }
}

/// One step of the scripted client model.
enum Op {
    /// Blocking-admission submit of query `i` (never rejected).
    Submit(usize),
    /// Non-blocking submit of query `i`; on `Saturated` the model drains
    /// the oldest in-flight session first, then must succeed eventually.
    TrySubmit(usize),
    /// Wait the oldest outstanding session and check it against the
    /// oracle.
    WaitOldest,
    /// Bump the default tenant's snapshot epoch mid-stream, invalidating
    /// both cache tiers under the in-flight sessions.
    Bump,
}

/// Derives a seeded op script: ~16 submissions with waits and epoch
/// bumps interleaved.
fn script(seed: u64, queries: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut submitted = 0usize;
    while submitted < 16 {
        match rng.gen_range(0..10) {
            0..=3 => {
                ops.push(Op::Submit(rng.gen_range(0..queries)));
                submitted += 1;
            }
            4..=6 => {
                ops.push(Op::TrySubmit(rng.gen_range(0..queries)));
                submitted += 1;
            }
            7..=8 => ops.push(Op::WaitOldest),
            _ => ops.push(Op::Bump),
        }
    }
    ops
}

/// Runs one scripted interleaving against one planner and checks every
/// session against the oracle.
fn drive(planner: ShardPlanner, scenario: u64) -> Result<(), TestCaseError> {
    let (g, queries, oracle) = workload();
    let mut rng = StdRng::seed_from_u64(scenario ^ 0x5e55);
    let workers = rng.gen_range(1..=3);
    let max_in_flight = rng.gen_range(1..=4);
    let config = session_config(planner, workers, max_in_flight, scenario);
    let service = FastService::new(Arc::clone(g), config);

    let mut pending: VecDeque<(usize, SessionHandle)> = VecDeque::new();
    let wait_oldest = |pending: &mut VecDeque<(usize, SessionHandle)>| {
        if let Some((qi, handle)) = pending.pop_front() {
            let report = handle.wait().expect("session under recoverable faults");
            prop_assert_eq!(
                report.embeddings,
                oracle[qi],
                "{}: query {} diverged from the run_fast oracle",
                planner,
                qi
            );
        }
        Ok(())
    };
    let mut submitted = 0usize;
    for op in script(scenario, queries.len()) {
        match op {
            Op::Submit(qi) => {
                pending.push_back((qi, service.submit(queries[qi].clone())));
                submitted += 1;
            }
            Op::TrySubmit(qi) => loop {
                match service.try_submit(queries[qi].clone()) {
                    Ok(h) => {
                        pending.push_back((qi, h));
                        submitted += 1;
                        break;
                    }
                    Err(ServeError::Saturated) => {
                        // The model's backpressure reaction: drain the
                        // oldest session, freeing an admitted slot.
                        wait_oldest(&mut pending)?;
                        std::thread::yield_now();
                    }
                    Err(e) => prop_assert!(false, "unexpected try_submit error: {e}"),
                }
            },
            Op::WaitOldest => wait_oldest(&mut pending)?,
            Op::Bump => {
                service.bump_epoch(TenantId::DEFAULT).expect("default tenant");
            }
        }
    }
    while !pending.is_empty() {
        wait_oldest(&mut pending)?;
    }
    let report = service.shutdown();
    prop_assert_eq!(report.completed, submitted as u64);
    prop_assert_eq!(report.failed, 0);
    prop_assert_eq!(report.deadline_misses, 0);
    prop_assert!(
        report.max_in_flight <= max_in_flight,
        "{}: admission exceeded the permit bound: {} > {}",
        planner,
        report.max_in_flight,
        max_in_flight
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The model-based bar: any seeded interleaving of submits, saturated
    /// retries, waits, and mid-stream epoch bumps — under tight permits,
    /// live deadlines, and recoverable faults — serves every session with
    /// the oracle's exact count, for all four planners.
    #[test]
    fn scripted_interleavings_match_the_oracle(scenario in any::<u64>()) {
        for planner in [
            ShardPlanner::Contiguous,
            ShardPlanner::WorkloadBalanced,
            ShardPlanner::OverlapAware,
            ShardPlanner::Auto,
        ] {
            drive(planner, scenario)?;
        }
    }
}
