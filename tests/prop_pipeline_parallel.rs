//! Property-based tests of the sharded parallel CST pipeline
//! (`cst::pipeline`): for arbitrary graphs and queries, the pipeline's
//! output is **identical for every thread count** at a fixed shard count,
//! and its embedding counts are identical to the sequential pipeline for
//! every shard count — the correctness bar of the overlapped host path.

use cst::{
    build_cst, build_cst_sharded, count_embeddings, for_each_shard_cst, plan_shards,
    CstOptions, PipelineOptions, PlannerConfig, RootProfile, ShardPlanner,
};
use fast::{run_fast, FastConfig, Variant};
use graph_core::generators::random_labelled_graph;
use graph_core::{BfsTree, Label, MatchingOrder, QueryGraph, QueryVertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_query() -> impl Strategy<Value = QueryGraph> {
    (3usize..=5, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<Label> = (0..n).map(|_| Label::new(rng.gen_range(0..2))).collect();
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((rng.gen_range(0..i), i));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(0.3) {
                    edges.push((a, b));
                }
            }
        }
        QueryGraph::new(labels, &edges).expect("connected by construction")
    })
}

/// Structural equality of two CSTs: same candidate sets and same adjacency
/// lists for every directed query edge.
fn csts_identical(a: &cst::Cst, b: &cst::Cst) -> bool {
    if a.query_vertex_count() != b.query_vertex_count() {
        return false;
    }
    for u in 0..a.query_vertex_count() {
        let qu = QueryVertexId::from_index(u);
        if a.candidates(qu) != b.candidates(qu) {
            return false;
        }
    }
    let edges_a: Vec<_> = a.directed_edges().collect();
    let edges_b: Vec<_> = b.directed_edges().collect();
    if edges_a != edges_b {
        return false;
    }
    for &(x, y) in &edges_a {
        let aa = a.adjacency(x, y);
        let bb = b.adjacency(x, y);
        if aa.offsets != bb.offsets || aa.targets != bb.targets {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// The merged CST is bit-identical across thread counts {1, 2, 4, 8}
    /// at a fixed shard count, and its embedding count matches the
    /// sequential build for every shard count.
    #[test]
    fn thread_count_never_changes_the_output(
        q in arb_query(),
        graph_seed in 0u64..300,
        shards in 1usize..12,
    ) {
        let g = random_labelled_graph(45, 0.15, 2, graph_seed);
        let root = QueryVertexId::new(0);
        let tree = BfsTree::new(&q, root);
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs");
        let sequential = build_cst(&q, &g, &tree);
        let whole = count_embeddings(&sequential, &q, &order);

        let mut reference: Option<cst::Cst> = None;
        for threads in [1usize, 2, 4, 8] {
            let opts = PipelineOptions {
                threads,
                shards: Some(shards),
                cst: CstOptions::default(),
                ..PipelineOptions::default()
            };
            let (merged, stats) = build_cst_sharded(&q, &g, &tree, &opts);
            prop_assert!(merged.validate(&q).is_ok());
            prop_assert_eq!(
                count_embeddings(&merged, &q, &order),
                whole,
                "threads {} shards {}",
                threads,
                shards
            );
            prop_assert_eq!(stats.shards, shards.min(stats.root_candidates.max(1)));
            match &reference {
                None => reference = Some(merged),
                Some(r) => prop_assert!(
                    csts_identical(r, &merged),
                    "threads {} produced a different CST",
                    threads
                ),
            }
        }
        // One shard reproduces the sequential CST exactly (not just its
        // counts).
        let opts = PipelineOptions {
            threads: 4,
            shards: Some(1),
            cst: CstOptions::default(),
            ..PipelineOptions::default()
        };
        let (single, _) = build_cst_sharded(&q, &g, &tree, &opts);
        prop_assert!(csts_identical(&sequential, &single));
    }

    /// Every shard planner preserves the pipeline's correctness bar: the
    /// merged CST's embedding count matches the sequential build, and the
    /// merged CST is bit-identical across thread counts at a fixed
    /// (planner, shard-count) pair — planned decompositions must never
    /// depend on the thread count.
    #[test]
    fn planners_preserve_counts_and_thread_invariance(
        q in arb_query(),
        graph_seed in 0u64..200,
        shards in 2usize..10,
    ) {
        let g = random_labelled_graph(45, 0.15, 2, graph_seed);
        let root = QueryVertexId::new(0);
        let tree = BfsTree::new(&q, root);
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs");
        let sequential = build_cst(&q, &g, &tree);
        let whole = count_embeddings(&sequential, &q, &order);
        for planner in [
            ShardPlanner::WorkloadBalanced,
            ShardPlanner::OverlapAware,
            ShardPlanner::Auto,
        ] {
            let mut reference: Option<cst::Cst> = None;
            for threads in [1usize, 4] {
                let opts = PipelineOptions {
                    threads,
                    shards: Some(shards),
                    planner,
                    cst: CstOptions::default(),
                    ..PipelineOptions::default()
                };
                let (merged, stats) = build_cst_sharded(&q, &g, &tree, &opts);
                prop_assert!(merged.validate(&q).is_ok());
                prop_assert_eq!(
                    count_embeddings(&merged, &q, &order),
                    whole,
                    "{} threads {} shards {}",
                    planner,
                    threads,
                    shards
                );
                prop_assert!(stats.shards <= shards.max(1), "{} over cap", planner);
                // Planned shards cover every root exactly once.
                prop_assert_eq!(
                    stats.shard_reports.iter().map(|r| r.roots).sum::<usize>(),
                    stats.root_candidates
                );
                match &reference {
                    None => reference = Some(merged),
                    Some(r) => prop_assert!(
                        csts_identical(r, &merged),
                        "{} threads {} produced a different CST",
                        planner,
                        threads
                    ),
                }
            }
        }
    }

    /// The workload-balanced boundary search's guarantee: whenever no
    /// single root weight exceeds the mean shard workload, every planned
    /// shard stays within 2× of the mean.
    #[test]
    fn balanced_shards_within_two_x_mean_when_possible(
        weight_seed in any::<u64>(),
        len in 1usize..120,
        shards in 1usize..12,
    ) {
        let weights: Vec<f64> = {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(weight_seed);
            (0..len).map(|_| rng.gen_range(0u32..1000) as f64).collect()
        };
        let total: f64 = weights.iter().sum();
        let profile = RootProfile::from_weights(weights.clone());
        let plan = plan_shards(
            ShardPlanner::WorkloadBalanced,
            &profile,
            shards,
            &PlannerConfig::default(),
        );
        // Coverage: every root in exactly one shard, boundaries contiguous.
        let mut seen: Vec<u32> = plan
            .ranges
            .iter()
            .flat_map(|r| plan.order[r.clone()].iter().copied())
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen.len(), weights.len());
        prop_assert!(seen.iter().enumerate().all(|(i, &v)| i as u32 == v));
        let effective = plan.shard_count();
        prop_assert!(effective <= shards.max(1));
        let mean = total / effective as f64;
        let max_weight = weights.iter().cloned().fold(0.0, f64::max);
        if total > 0.0 && max_weight <= mean {
            for (s, sw) in plan.shard_weights.iter().enumerate() {
                prop_assert!(
                    *sw < 2.0 * mean,
                    "shard {} workload {} vs mean {} (S={})",
                    s,
                    sw,
                    mean,
                    effective
                );
            }
        }
    }

    /// The full pipelined host driver (partition → schedule → kernel/CPU
    /// share) reports identical embeddings and identical downstream counts
    /// for every thread count.
    #[test]
    fn pipelined_host_is_thread_count_invariant(
        graph_seed in 0u64..200,
        shards in 2usize..8,
    ) {
        let q = QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(1)],
            &[(0, 1), (1, 2), (0, 2)],
        ).expect("triangle");
        let g = random_labelled_graph(50, 0.2, 2, graph_seed);
        let sequential = run_fast(&q, &g, &FastConfig::test_small(Variant::Share)).expect("run");
        let mut fingerprints = Vec::new();
        for threads in [2usize, 4] {
            let mut config = FastConfig::test_small(Variant::Share);
            config.host_threads = threads;
            config.pipeline_shards = Some(shards);
            let r = run_fast(&q, &g, &config).expect("run");
            prop_assert_eq!(r.embeddings, sequential.embeddings, "threads {}", threads);
            fingerprints.push((
                r.fpga_partitions,
                r.cpu_partitions,
                r.stolen,
                r.transfer_bytes,
                r.kernel_cycles,
                r.counts.n,
                r.counts.m,
            ));
        }
        prop_assert_eq!(fingerprints[0], fingerprints[1]);
    }
}

/// A query whose label exists nowhere in the graph: the root candidate set
/// is empty, every shard is empty, and the pipeline reports zero work.
#[test]
fn empty_root_candidate_set() {
    let q = QueryGraph::new(vec![Label::new(9), Label::new(1)], &[(0, 1)]).unwrap();
    let g = random_labelled_graph(30, 0.3, 2, 11);
    let tree = BfsTree::new(&q, QueryVertexId::new(0));
    let opts = PipelineOptions {
        threads: 4,
        shards: Some(8),
        cst: CstOptions::default(),
        ..PipelineOptions::default()
    };
    let mut seen = 0usize;
    let stats = for_each_shard_cst(&q, &g, &tree, &opts, |s| {
        seen += 1;
        assert!(s.cst.any_empty());
    });
    assert_eq!(stats.root_candidates, 0);
    assert_eq!(stats.shards, 1, "zero roots collapse to one (empty) shard");
    assert_eq!(seen, 1);
    let (merged, _) = build_cst_sharded(&q, &g, &tree, &opts);
    assert!(merged.any_empty());
}

/// More shards than root candidates: every shard holds at most one root
/// (singleton shards), and the output still matches the sequential count.
#[test]
fn singleton_root_shards() {
    let q = QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .unwrap();
    let g = random_labelled_graph(25, 0.3, 2, 13);
    let tree = BfsTree::new(&q, QueryVertexId::new(0));
    let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
    let sequential = build_cst(&q, &g, &tree);
    let whole = count_embeddings(&sequential, &q, &order);
    let roots = cst::root_candidates(&q, &g, &tree, CstOptions::default()).len();
    assert!(roots >= 1, "test graph must have root candidates");

    let opts = PipelineOptions {
        threads: 4,
        shards: Some(roots * 3), // force the clamp to one root per shard
        cst: CstOptions::default(),
        ..PipelineOptions::default()
    };
    let mut sum = 0u64;
    let stats = for_each_shard_cst(&q, &g, &tree, &opts, |s| {
        assert_eq!(s.report.roots, 1);
        sum += count_embeddings(&s.cst, &q, &order);
    });
    assert_eq!(stats.shards, roots);
    assert_eq!(sum, whole);
    let (merged, _) = build_cst_sharded(&q, &g, &tree, &opts);
    assert_eq!(count_embeddings(&merged, &q, &order), whole);
}

/// Planner edge cases through the whole pipeline: empty root sets, a
/// single root candidate, and more shards than candidates, under every
/// planner.
#[test]
fn planner_edge_cases_end_to_end() {
    let g = random_labelled_graph(25, 0.3, 2, 13);
    let planners = [
        ShardPlanner::Contiguous,
        ShardPlanner::WorkloadBalanced,
        ShardPlanner::OverlapAware,
        ShardPlanner::Auto,
    ];
    // (query, expected-empty) pairs: a label absent from the graph (zero
    // roots → zero-workload plan) and a normal triangle query.
    let absent = QueryGraph::new(vec![Label::new(9), Label::new(1)], &[(0, 1)]).unwrap();
    let triangle = QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .unwrap();
    for planner in planners {
        // Zero roots: one empty shard, regardless of planner.
        let tree = BfsTree::new(&absent, QueryVertexId::new(0));
        let opts = PipelineOptions {
            threads: 2,
            shards: Some(8),
            planner,
            cst: CstOptions::default(),
            ..PipelineOptions::default()
        };
        let stats = for_each_shard_cst(&absent, &g, &tree, &opts, |s| {
            assert!(s.cst.any_empty());
        });
        assert_eq!(stats.shards, 1, "{planner}: zero roots collapse to one shard");

        // Triangle query: shards > roots clamps, counts preserved.
        let tree = BfsTree::new(&triangle, QueryVertexId::new(0));
        let order = MatchingOrder::new(&triangle, tree.bfs_order().to_vec()).unwrap();
        let whole = count_embeddings(&build_cst(&triangle, &g, &tree), &triangle, &order);
        let roots = cst::root_candidates(&triangle, &g, &tree, CstOptions::default()).len();
        let opts = PipelineOptions {
            threads: 2,
            shards: Some(roots * 5),
            planner,
            cst: CstOptions::default(),
            ..PipelineOptions::default()
        };
        let (merged, stats) = build_cst_sharded(&triangle, &g, &tree, &opts);
        assert!(stats.shards <= roots, "{planner}: clamped to the root count");
        assert_eq!(
            count_embeddings(&merged, &triangle, &order),
            whole,
            "{planner}"
        );

        // Single root candidate: every planner degenerates to one shard.
        let single_plan = cst::plan_shards(
            planner,
            &RootProfile::from_weights(vec![7.0]),
            16,
            &PlannerConfig::default(),
        );
        assert_eq!(single_plan.shard_count(), 1, "{planner}");
    }
}
