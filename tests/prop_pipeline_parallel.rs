//! Property-based tests of the sharded parallel CST pipeline
//! (`cst::pipeline`): for arbitrary graphs and queries, the pipeline's
//! output is **identical for every thread count** at a fixed shard count,
//! and its embedding counts are identical to the sequential pipeline for
//! every shard count — the correctness bar of the overlapped host path.

use cst::{
    build_cst, build_cst_sharded, count_embeddings, for_each_shard_cst, CstOptions,
    PipelineOptions,
};
use fast::{run_fast, FastConfig, Variant};
use graph_core::generators::random_labelled_graph;
use graph_core::{BfsTree, Label, MatchingOrder, QueryGraph, QueryVertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_query() -> impl Strategy<Value = QueryGraph> {
    (3usize..=5, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<Label> = (0..n).map(|_| Label::new(rng.gen_range(0..2))).collect();
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((rng.gen_range(0..i), i));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(0.3) {
                    edges.push((a, b));
                }
            }
        }
        QueryGraph::new(labels, &edges).expect("connected by construction")
    })
}

/// Structural equality of two CSTs: same candidate sets and same adjacency
/// lists for every directed query edge.
fn csts_identical(a: &cst::Cst, b: &cst::Cst) -> bool {
    if a.query_vertex_count() != b.query_vertex_count() {
        return false;
    }
    for u in 0..a.query_vertex_count() {
        let qu = QueryVertexId::from_index(u);
        if a.candidates(qu) != b.candidates(qu) {
            return false;
        }
    }
    let edges_a: Vec<_> = a.directed_edges().collect();
    let edges_b: Vec<_> = b.directed_edges().collect();
    if edges_a != edges_b {
        return false;
    }
    for &(x, y) in &edges_a {
        let aa = a.adjacency(x, y);
        let bb = b.adjacency(x, y);
        if aa.offsets != bb.offsets || aa.targets != bb.targets {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    /// The merged CST is bit-identical across thread counts {1, 2, 4, 8}
    /// at a fixed shard count, and its embedding count matches the
    /// sequential build for every shard count.
    #[test]
    fn thread_count_never_changes_the_output(
        q in arb_query(),
        graph_seed in 0u64..300,
        shards in 1usize..12,
    ) {
        let g = random_labelled_graph(45, 0.15, 2, graph_seed);
        let root = QueryVertexId::new(0);
        let tree = BfsTree::new(&q, root);
        let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).expect("bfs");
        let sequential = build_cst(&q, &g, &tree);
        let whole = count_embeddings(&sequential, &q, &order);

        let mut reference: Option<cst::Cst> = None;
        for threads in [1usize, 2, 4, 8] {
            let opts = PipelineOptions {
                threads,
                shards: Some(shards),
                cst: CstOptions::default(),
            };
            let (merged, stats) = build_cst_sharded(&q, &g, &tree, &opts);
            prop_assert!(merged.validate(&q).is_ok());
            prop_assert_eq!(
                count_embeddings(&merged, &q, &order),
                whole,
                "threads {} shards {}",
                threads,
                shards
            );
            prop_assert_eq!(stats.shards, shards.min(stats.root_candidates.max(1)));
            match &reference {
                None => reference = Some(merged),
                Some(r) => prop_assert!(
                    csts_identical(r, &merged),
                    "threads {} produced a different CST",
                    threads
                ),
            }
        }
        // One shard reproduces the sequential CST exactly (not just its
        // counts).
        let opts = PipelineOptions {
            threads: 4,
            shards: Some(1),
            cst: CstOptions::default(),
        };
        let (single, _) = build_cst_sharded(&q, &g, &tree, &opts);
        prop_assert!(csts_identical(&sequential, &single));
    }

    /// The full pipelined host driver (partition → schedule → kernel/CPU
    /// share) reports identical embeddings and identical downstream counts
    /// for every thread count.
    #[test]
    fn pipelined_host_is_thread_count_invariant(
        graph_seed in 0u64..200,
        shards in 2usize..8,
    ) {
        let q = QueryGraph::new(
            vec![Label::new(0), Label::new(1), Label::new(1)],
            &[(0, 1), (1, 2), (0, 2)],
        ).expect("triangle");
        let g = random_labelled_graph(50, 0.2, 2, graph_seed);
        let sequential = run_fast(&q, &g, &FastConfig::test_small(Variant::Share)).expect("run");
        let mut fingerprints = Vec::new();
        for threads in [2usize, 4] {
            let mut config = FastConfig::test_small(Variant::Share);
            config.host_threads = threads;
            config.pipeline_shards = Some(shards);
            let r = run_fast(&q, &g, &config).expect("run");
            prop_assert_eq!(r.embeddings, sequential.embeddings, "threads {}", threads);
            fingerprints.push((
                r.fpga_partitions,
                r.cpu_partitions,
                r.stolen,
                r.transfer_bytes,
                r.kernel_cycles,
                r.counts.n,
                r.counts.m,
            ));
        }
        prop_assert_eq!(fingerprints[0], fingerprints[1]);
    }
}

/// A query whose label exists nowhere in the graph: the root candidate set
/// is empty, every shard is empty, and the pipeline reports zero work.
#[test]
fn empty_root_candidate_set() {
    let q = QueryGraph::new(vec![Label::new(9), Label::new(1)], &[(0, 1)]).unwrap();
    let g = random_labelled_graph(30, 0.3, 2, 11);
    let tree = BfsTree::new(&q, QueryVertexId::new(0));
    let opts = PipelineOptions {
        threads: 4,
        shards: Some(8),
        cst: CstOptions::default(),
    };
    let mut seen = 0usize;
    let stats = for_each_shard_cst(&q, &g, &tree, &opts, |s| {
        seen += 1;
        assert!(s.cst.any_empty());
    });
    assert_eq!(stats.root_candidates, 0);
    assert_eq!(stats.shards, 1, "zero roots collapse to one (empty) shard");
    assert_eq!(seen, 1);
    let (merged, _) = build_cst_sharded(&q, &g, &tree, &opts);
    assert!(merged.any_empty());
}

/// More shards than root candidates: every shard holds at most one root
/// (singleton shards), and the output still matches the sequential count.
#[test]
fn singleton_root_shards() {
    let q = QueryGraph::new(
        vec![Label::new(0), Label::new(1), Label::new(1)],
        &[(0, 1), (1, 2), (0, 2)],
    )
    .unwrap();
    let g = random_labelled_graph(25, 0.3, 2, 13);
    let tree = BfsTree::new(&q, QueryVertexId::new(0));
    let order = MatchingOrder::new(&q, tree.bfs_order().to_vec()).unwrap();
    let sequential = build_cst(&q, &g, &tree);
    let whole = count_embeddings(&sequential, &q, &order);
    let roots = cst::root_candidates(&q, &g, &tree, CstOptions::default()).len();
    assert!(roots >= 1, "test graph must have root candidates");

    let opts = PipelineOptions {
        threads: 4,
        shards: Some(roots * 3), // force the clamp to one root per shard
        cst: CstOptions::default(),
    };
    let mut sum = 0u64;
    let stats = for_each_shard_cst(&q, &g, &tree, &opts, |s| {
        assert_eq!(s.report.roots, 1);
        sum += count_embeddings(&s.cst, &q, &order);
    });
    assert_eq!(stats.shards, roots);
    assert_eq!(sum, whole);
    let (merged, _) = build_cst_sharded(&q, &g, &tree, &opts);
    assert_eq!(count_embeddings(&merged, &q, &order), whole);
}
