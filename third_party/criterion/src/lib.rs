//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Timing is a straightforward warmup-then-sample loop printing
//! mean ± spread per benchmark — adequate for relative comparisons; swap in
//! the real crate (see the workspace manifest) for publication-grade stats.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget: keeps `cargo bench` tractable even for
/// heavy harnesses.
const SAMPLE_BUDGET: Duration = Duration::from_millis(500);

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.default_sample_size, &mut f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(20)
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.effective_samples(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        let samples = self.effective_samples();
        run_one(&full, samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
    spread_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration primes caches and lazily-built state.
        black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_nanos() as f64);
            if budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
        let n = times.len() as f64;
        let mean = times.iter().sum::<f64>() / n;
        let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
        self.result_ns = mean;
        self.spread_ns = var.sqrt();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples: samples.max(1),
        result_ns: 0.0,
        spread_ns: 0.0,
    };
    f(&mut b);
    println!(
        "  {id:<50} {:>12} ns/iter (+/- {})",
        format_ns(b.result_ns),
        format_ns(b.spread_ns)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{}", ns.round() as u64)
    }
}

/// Define a benchmark group function. Both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
