//! `any::<T>()` for the primitive types the workspace requests.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Strategy producing an unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, moderately sized values: plenty for property tests.
        rng.gen_range(-1.0e9..1.0e9)
    }
}
