//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! Implements the `proptest!` macro, range/tuple/`prop_map`/`any`/`option::of`
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*` family.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: every case is seeded from an FNV-1a hash of the test
//!   name and the case index, so CI runs are bit-reproducible (no
//!   `proptest-regressions` files, no ambient entropy).
//! * **No shrinking**: a failing case reports its seed and case index; re-run
//!   reproduces it exactly, which substitutes for shrinking in CI.

pub mod arbitrary;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}\n{}",
                    stringify!($left), stringify!($right), l, format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Reject the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Bind `proptest!` parameters: `name in strategy` or `name: Type` forms,
/// in any mix, comma-separated.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:expr;) => {};
    ($rng:expr; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::new_value(&$strat, $rng);
    };
    ($rng:expr; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::new_value(&$strat, $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:expr; $name:ident : $ty:ty) => {
        let $name: $ty =
            $crate::strategy::Strategy::new_value(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:expr; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty =
            $crate::strategy::Strategy::new_value(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $name:ident; ($($params:tt)*) $body:block) => {{
        let config: $crate::test_runner::ProptestConfig = $config;
        let test_id = concat!(module_path!(), "::", stringify!($name));
        let mut accepted: u32 = 0;
        let mut attempt: u64 = 0;
        let max_attempts: u64 = (config.cases as u64) * 20 + 100;
        while accepted < config.cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest {}: too many rejected cases ({} accepted of {} wanted after {} attempts)",
                    test_id, accepted, config.cases, attempt
                );
            }
            let mut rng = $crate::test_runner::case_rng(test_id, attempt);
            let case_seed = attempt;
            attempt += 1;
            let outcome = (|| -> $crate::test_runner::TestCaseResult {
                let rng = &mut rng;
                $crate::__proptest_bind!(rng; $($params)*);
                $body
                ::core::result::Result::Ok(())
            })();
            match outcome {
                ::core::result::Result::Ok(()) => accepted += 1,
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at deterministic case {} (re-run reproduces it):\n{}",
                        test_id, case_seed, msg
                    );
                }
            }
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    (
        $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body!($config; $name; ($($params)*) $body);
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

/// The `proptest!` block macro: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// parameters are strategy bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}
