//! `proptest::option::of` — yields `None` ~25% of the time, matching real
//! proptest's default weighting.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}
