//! Config, case errors, and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies. A concrete type keeps the `Strategy` trait
/// object-safe-free and simple.
pub type TestRng = StdRng;

/// FNV-1a, stable across platforms and runs — the basis of deterministic
/// case seeding.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic RNG for case `index` of test `test_id`.
pub fn case_rng(test_id: &str, index: u64) -> TestRng {
    StdRng::seed_from_u64(fnv1a(test_id.as_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is regenerated.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;
