//! Value-generation strategies: ranges, tuples, and `prop_map`.
//!
//! No shrinking — `new_value` draws one value from the deterministic
//! per-case RNG (see crate docs).

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};

pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

impl<T: SampleUniform + rand::One> Strategy for std::ops::Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Constant strategy: `Just(v)` always yields a clone of `v`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

