//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal, deterministic implementation of exactly the surface the sources
//! call: [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] / [`rngs::SmallRng`], and [`seq::SliceRandom`].
//!
//! The generators are SplitMix64-seeded xoshiro256++ (`StdRng`) and
//! SplitMix64 itself (`SmallRng`). Streams are fully deterministic for a
//! given seed, which the test suite and dataset ladder rely on. Statistical
//! quality is more than adequate for graph generation and property tests;
//! this is **not** a cryptographic RNG.

pub mod rngs;
pub mod seq;

/// Core RNG interface: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a `Range` or `RangeInclusive`.
    ///
    /// Panics if the range is empty, matching `rand` 0.8 behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Sample from the "standard" distribution: uniform over the full
    /// integer domain, or `[0, 1)` for floats.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, `rand`-0.8 style.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    /// Deterministic convenience seed (`rand` uses a fixed doc-stable seed).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Map a `u64` to the unit interval `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
                let span = (high_incl as u128).wrapping_sub(low as u128).wrapping_add(1) as u128;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                // Multiply-shift mapping (Lemire, no rejection): bias is
                // <= 2^-64 per draw, irrelevant for graph generation.
                let x = rng.next_u64() as u128;
                let mapped = (x * span) >> 64;
                low.wrapping_add(mapped as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                low + (high_incl - low) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty(&self) -> bool;
}

impl<T: SampleUniform + One> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, T::minus_one(self.end))
    }
    #[inline]
    fn is_empty(&self) -> bool {
        // `partial_cmp` keeps NaN float bounds classified as empty.
        !matches!(
            self.start.partial_cmp(&self.end),
            Some(std::cmp::Ordering::Less)
        )
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end())
    }
    #[inline]
    fn is_empty(&self) -> bool {
        !matches!(
            self.start().partial_cmp(self.end()),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }
}

/// Helper for turning a half-open bound into an inclusive one.
pub trait One: Sized {
    fn minus_one(v: Self) -> Self;
}

macro_rules! impl_one_int {
    ($($t:ty),*) => {$(
        impl One for $t {
            #[inline]
            fn minus_one(v: Self) -> Self { v.wrapping_sub(1) }
        }
    )*};
}

impl_one_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_one_float {
    ($($t:ty),*) => {$(
        impl One for $t {
            // Float ranges are half-open by the sampling formula already:
            // `low + (high-low) * u` with `u in [0,1)` never reaches `high`.
            #[inline]
            fn minus_one(v: Self) -> Self { v }
        }
    )*};
}

impl_one_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [1, 2, 3, 4];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut w = (0..32).collect::<Vec<_>>();
        w.shuffle(&mut rng);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
