//! Umbrella crate re-exporting the FAST reproduction workspace.
//!
//! See README.md for the quickstart and DESIGN.md for the architecture.

pub use cst;
pub use fast;
pub use fpga_sim;
pub use graph_core;
pub use join_baselines;
pub use matching;
pub use obs;
pub use serve;
